(* Bounded exhaustive exploration: the correct implementation must
   survive the entire bounded tree of a tiny campaign; the negative
   control must be caught within the bound, and the emitted repro must
   replay bit-for-bit through the ordinary script path. *)

let explore_cfg ~algo ~seed ~preemptions =
  Explore.
    {
      campaign =
        Crashes.
          {
            factory = Result.get_ok (Set_intf.by_name algo);
            threads = 2;
            ops_per_thread = 1;
            workload =
              {
                (Workload.default Workload.update_intensive) with
                key_range = 4;
                prefill_n = 1;
              };
            max_crashes = 1;
          };
      seed;
      preemptions;
      crashes = 1;
      wb_width = 2;
      max_execs = 0;
    }

let test_tracking_survives_full_tree () =
  let o = Explore.run (explore_cfg ~algo:"tracking" ~seed:1 ~preemptions:1) in
  Alcotest.(check bool) "tree exhausted" true o.Explore.stats.Explore.complete;
  Alcotest.(check int) "no failures" 0 o.Explore.stats.Explore.failures;
  Alcotest.(check bool) "failure is absent" true (o.Explore.failure = None);
  (* the run actually explored something on every axis *)
  let s = o.Explore.stats in
  Alcotest.(check bool) "many executions" true (s.Explore.executions > 100);
  Alcotest.(check bool) "crash points seen" true (s.Explore.crash_points > 0);
  Alcotest.(check bool) "wb choices seen" true (s.Explore.wb_choices > 0);
  Alcotest.(check bool) "sched points seen" true
    (s.Explore.decision_points > 0)

let test_budget_reported_honestly () =
  let cfg =
    { (explore_cfg ~algo:"tracking" ~seed:1 ~preemptions:2) with
      Explore.max_execs = 10 }
  in
  let o = Explore.run cfg in
  Alcotest.(check int) "stopped at the budget" 10
    o.Explore.stats.Explore.executions;
  Alcotest.(check bool) "not claimed complete" false
    o.Explore.stats.Explore.complete

let test_broken_found_and_replays () =
  (* seed 1 makes one thread insert an absent key: the elided new-node
     pwb leaves the node never-persisted, and some crash point + wb
     choice makes it durably reachable — the explorer must find it
     without any preemption budget at all. *)
  let o =
    Explore.run (explore_cfg ~algo:"tracking-broken" ~seed:1 ~preemptions:0)
  in
  Alcotest.(check bool) "found a violation" true
    (o.Explore.stats.Explore.failures > 0);
  let r =
    match o.Explore.failure with
    | Some r -> r
    | None -> Alcotest.fail "no repro emitted"
  in
  Alcotest.(check string) "repro names the algo" "tracking-broken"
    r.Repro.algo;
  (* an explorer-found failure needs a deliberate write-back choice: the
     poisoned node is reachable only if its predecessor's post-CAS pwb
     survives the crash, which `Rng-free exploration expresses as an
     explicit resolution on the crashing round *)
  Alcotest.(check bool) "some round carries an explicit wb" true
    (List.exists (fun rd -> rd.Repro.wb <> `Rng) r.Repro.rounds);
  (* the repro replays through the ordinary script path, reproducing the
     identical failure; any schedule divergence would surface as a
     different error message *)
  match Crashes.replay r with
  | Error e -> Alcotest.(check string) "bit-for-bit" r.Repro.error e
  | Ok () -> Alcotest.fail "explorer repro did not reproduce"

let suite =
  [
    Alcotest.test_case "tracking survives the full bounded tree" `Quick
      test_tracking_survives_full_tree;
    Alcotest.test_case "execution budget reported honestly" `Quick
      test_budget_reported_honestly;
    Alcotest.test_case "broken variant found and replays" `Quick
      test_broken_found_and_replays;
  ]
