(* Crash forensics: the postmortems attached to failing campaigns must
   name the elided persist site and the cache line it failed to flush —
   for both negative controls — must never fire on healthy variants, and
   must be byte-deterministic (the `repro explain` contract). *)

let explore_cfg ~algo ~threads ~ops ~keys ~prefill ~seed =
  Explore.
    {
      campaign =
        Crashes.
          {
            factory = Result.get_ok (Set_intf.by_name algo);
            threads;
            ops_per_thread = ops;
            workload =
              {
                (Workload.default Workload.update_intensive) with
                key_range = keys;
                prefill_n = prefill;
              };
            max_crashes = 1;
          };
      seed;
      preemptions = 0;
      crashes = 1;
      wb_width = 2;
      max_execs = 0;
    }

(* The same configurations the explore smoke tests use to catch each
   negative control; the repros shipped under repros/ were generated
   from exactly these. *)
let tracking_broken_cfg =
  explore_cfg ~algo:"tracking-broken" ~threads:2 ~ops:1 ~keys:4 ~prefill:1
    ~seed:1

let memento_broken_cfg =
  explore_cfg ~algo:"memento-broken" ~threads:1 ~ops:3 ~keys:3 ~prefill:0
    ~seed:0

let failing_repro cfg =
  let o = Explore.run cfg in
  match o.Explore.failure with
  | Some r -> r
  | None -> Alcotest.fail "exploration found no failure"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains what needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: %S not found in:\n%s" what needle hay

(* -- golden postmortems for the negative controls ------------------------- *)

let test_tracking_broken_postmortem () =
  let r = failing_repro tracking_broken_cfg in
  match Crashes.explain r with
  | Error e -> Alcotest.failf "explain failed: %s" e
  | Ok pm ->
      let text = Forensics.render_text pm in
      (* the elided flush site is named as disabled, and the culprit
         analysis points at it *)
      Alcotest.(check (list string))
        "disabled site" [ "rlist-broken.new.pwb" ]
        (Forensics.disabled_sites pm);
      check_contains "culprit names the site" "rlist-broken.new.pwb" text;
      (* the dropped cache line: the new node that never persisted *)
      check_contains "never-persisted line" "never persisted" text;
      check_contains "culprit names the line"
        "the failure touched never-persisted line node:4" text;
      check_contains "flush history" "no write-back was ever issued" text;
      check_contains "lineage present" "-- operation lineage" text

let test_memento_broken_postmortem () =
  let r = failing_repro memento_broken_cfg in
  match Crashes.explain r with
  | Error e -> Alcotest.failf "explain failed: %s" e
  | Ok pm ->
      let text = Forensics.render_text pm in
      Alcotest.(check (list string))
        "disabled site" [ "mmt-broken.cp.pwb" ]
        (Forensics.disabled_sites pm);
      check_contains "culprit names the site" "mmt-broken.cp.pwb" text;
      (* the checkpoint lines silently reverted to stale durable values
         — the durable-vs-volatile diff must say so, with the writer
         attributed as of the crash round, not the end of the run *)
      check_contains "stale revert reported"
        "reverted to a stale durable value" text;
      check_contains "diff section"
        "reverted to older durable values" text;
      check_contains "writer attribution" "insert key 3" text

(* -- healthy variants never produce a postmortem -------------------------- *)

let healthy_cfg ~algo =
  Crashes.
    {
      factory = Result.get_ok (Set_intf.by_name algo);
      threads = 3;
      ops_per_thread = 6;
      workload =
        {
          (Workload.default Workload.update_intensive) with
          key_range = 8;
          prefill_n = 4;
        };
      max_crashes = 2;
    }

let prop_healthy_no_postmortem =
  QCheck2.Test.make ~name:"healthy variants yield zero postmortems"
    ~count:30
    QCheck2.Gen.(
      pair (oneofl [ "tracking"; "memento-list"; "memento-comb" ])
        (int_bound 1000))
    (fun (algo, seed) ->
      match Crashes.forensic_run (healthy_cfg ~algo) ~seed with
      | Ok _, _, None -> true
      | Ok _, _, Some _ ->
          QCheck2.Test.fail_report "passing run produced a postmortem"
      | Error e, _, _ ->
          QCheck2.Test.fail_reportf "%s seed %d failed: %s" algo seed e)

(* -- determinism: explain twice, byte-identical --------------------------- *)

let test_explain_byte_identical () =
  let r = failing_repro memento_broken_cfg in
  let once () =
    match Crashes.explain r with
    | Ok pm -> (Forensics.render_text pm, Forensics.render_json pm)
    | Error e -> Alcotest.failf "explain failed: %s" e
  in
  let t1, j1 = once () in
  let t2, j2 = once () in
  Alcotest.(check string) "text byte-identical" t1 t2;
  Alcotest.(check string) "json byte-identical" j1 j2;
  (* and the JSON names the same culprit site *)
  check_contains "json culprit" "mmt-broken.cp.pwb" j1

let suite =
  [
    Alcotest.test_case "tracking-broken postmortem names site and line"
      `Quick test_tracking_broken_postmortem;
    Alcotest.test_case "memento-broken postmortem names site and stale line"
      `Quick test_memento_broken_postmortem;
    QCheck_alcotest.to_alcotest prop_healthy_no_postmortem;
    Alcotest.test_case "explain output is byte-identical" `Quick
      test_explain_byte_identical;
  ]
