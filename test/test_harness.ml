(* Harness machinery: workload generation, the throughput runner, cost
   ablation toggles, figure generation plumbing, and cross-validation of
   the per-key oracle against the exhaustive linearizability checker. *)

let test_workload_mix () =
  let cfg = Workload.default Workload.read_intensive in
  let rng = Random.State.make [| 3 |] in
  let n = 20_000 in
  let finds = ref 0 and ins = ref 0 and del = ref 0 in
  for _ = 1 to n do
    match Workload.gen_op rng cfg with
    | Set_intf.Fnd k ->
        Alcotest.(check bool) "key in range" true (k >= 1 && k <= 500);
        incr finds
    | Set_intf.Ins _ -> incr ins
    | Set_intf.Del _ -> incr del
  done;
  let frac x = float_of_int !x /. float_of_int n in
  Alcotest.(check bool) "~70% finds" true (abs_float (frac finds -. 0.70) < 0.02);
  Alcotest.(check bool) "ins ~= del" true (abs_float (frac ins -. frac del) < 0.02)

let test_workload_mix_odd_remainder () =
  (* 75% finds leaves an odd 25% of updates: the generator must still
     split them evenly between inserts and deletes.  An integer halving
     here used to give deletes the extra percentage point, drifting sets
     toward empty on long runs. *)
  let cfg = Workload.default (Workload.mix_of_find_pct 75) in
  let rng = Random.State.make [| 9 |] in
  let n = 40_000 in
  let finds = ref 0 and ins = ref 0 and del = ref 0 in
  for _ = 1 to n do
    match Workload.gen_op rng cfg with
    | Set_intf.Fnd _ -> incr finds
    | Set_intf.Ins _ -> incr ins
    | Set_intf.Del _ -> incr del
  done;
  let frac x = float_of_int !x /. float_of_int n in
  Alcotest.(check bool) "~75% finds" true (abs_float (frac finds -. 0.75) < 0.01);
  Alcotest.(check bool) "even ins/del split" true
    (abs_float (frac ins -. frac del) < 0.01)

let test_workload_skew_ranking () =
  (* Empirical frequency must match the skew parameter: for hot-set mass
     s, the hottest 20% of keys receive ~s of the draws, and quintile
     frequencies are monotonically decreasing.  Also: more skew = a
     heavier hot set. *)
  let rng = Random.State.make [| 17 |] in
  let n = 50_000 in
  let mass_of s =
    let cfg =
      { (Workload.default Workload.read_intensive) with
        Workload.key_range = 100;
        dist = Workload.skewed s;
      }
    in
    let counts = Array.make 5 0 in
    for _ = 1 to n do
      let k = Workload.gen_key rng cfg in
      Alcotest.(check bool) "key in range" true (k >= 1 && k <= 100);
      counts.((k - 1) / 20) <- counts.((k - 1) / 20) + 1
    done;
    for q = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "s=%.2f: quintile %d >= quintile %d" s q (q + 1))
        true
        (counts.(q) >= counts.(q + 1))
    done;
    float_of_int counts.(0) /. float_of_int n
  in
  let m50 = mass_of 0.5 and m80 = mass_of 0.8 in
  Alcotest.(check bool)
    (Printf.sprintf "s=0.5: hot quintile holds ~50%% (%.3f)" m50)
    true
    (abs_float (m50 -. 0.5) < 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "s=0.8: hot quintile holds ~80%% (%.3f)" m80)
    true
    (abs_float (m80 -. 0.8) < 0.03);
  Alcotest.(check bool) "more skew concentrates harder" true (m80 > m50);
  (* parameter validation *)
  (match Workload.skewed 0.1 with
  | _ -> Alcotest.fail "skew below 0.2 must be rejected"
  | exception Invalid_argument _ -> ());
  match Workload.skewed 1.0 with
  | _ -> Alcotest.fail "skew of 1.0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_workload_uniform_stream_unchanged () =
  (* The Uniform path must consume exactly the historical rng draws:
     recorded campaign repros replay the stream. *)
  let cfg = Workload.default Workload.read_intensive in
  let r1 = Random.State.make [| 42 |] and r2 = Random.State.make [| 42 |] in
  for _ = 1 to 1_000 do
    let k = Workload.gen_key r1 cfg in
    Alcotest.(check int) "one int draw per key" (1 + Random.State.int r2 500) k
  done

let contains_substring msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let test_by_name_lists_valid_names () =
  (match Set_intf.by_name "tracking" with
  | Ok f -> Alcotest.(check string) "found" "tracking" f.Set_intf.fname
  | Error e -> Alcotest.fail e);
  match Set_intf.by_name "no-such-algo" with
  | Ok _ -> Alcotest.fail "unknown name must be an error"
  | Error msg ->
      Alcotest.(check bool) "error names the culprit" true
        (contains_substring msg "no-such-algo");
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "error lists %S" name)
            true
            (contains_substring msg name))
        (Set_intf.names ())

let test_prefill_fills () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let algo = Set_intf.tracking.Set_intf.make heap ~threads:1 in
  let cfg = Workload.default Workload.read_intensive in
  Workload.prefill (Random.State.make [| 1 |]) cfg algo;
  let n = List.length (algo.Set_intf.contents ()) in
  (* 250 random draws from 500 keys: expect ~40% full *)
  Alcotest.(check bool) "roughly 40% full" true (n > 150 && n < 250)

let test_runner_sanity () =
  let wl = Workload.default Workload.update_intensive in
  let p1 = Runner.measure ~duration_ns:60_000. Set_intf.tracking ~threads:1 wl in
  let p8 = Runner.measure ~duration_ns:60_000. Set_intf.tracking ~threads:8 wl in
  Alcotest.(check bool) "positive throughput" true (p1.Runner.throughput_mops > 0.);
  Alcotest.(check bool) "scales with threads" true
    (p8.Runner.throughput_mops > 2. *. p1.Runner.throughput_mops);
  Alcotest.(check bool) "counts pwbs" true (p1.Runner.pwbs_per_op > 1.);
  Alcotest.(check bool) "counts psyncs" true (p1.Runner.psyncs_per_op > 1.);
  Alcotest.(check bool) "fractions sum to 1" true
    (abs_float (p1.Runner.low_frac +. p1.Runner.medium_frac +. p1.Runner.high_frac -. 1.) < 1e-6);
  (* pfences are reported in their own column, no longer silently folded
     into psyncs_per_op *)
  Alcotest.(check bool) "counts pfences separately" true
    (p1.Runner.pfences_per_op > 0.)

let test_persistence_free_is_faster () =
  let wl = Workload.default Workload.update_intensive in
  let full = Runner.measure ~duration_ns:60_000. Set_intf.tracking ~threads:8 wl in
  let pfree =
    Runner.measure ~duration_ns:60_000.
      ~prepare:(fun () -> Pstats.set_all_enabled false)
      Set_intf.tracking ~threads:8 wl
  in
  Pstats.set_all_enabled true;
  Alcotest.(check bool) "pfree faster" true
    (pfree.Runner.throughput_mops > full.Runner.throughput_mops);
  Alcotest.(check (float 0.0001)) "pfree has no pwbs" 0. pfree.Runner.pwbs_per_op

let test_cas_drain_ablation_shifts_cost () =
  (* with the drain disabled, psyncs must carry the stall instead, so
     removing them should matter more *)
  let wl = Workload.default Workload.update_intensive in
  let gain table_tweak =
    Cost.with_table table_tweak (fun () ->
        let full =
          Runner.measure ~duration_ns:60_000. ~seed:3 Set_intf.tracking
            ~threads:4 wl
        in
        let nosync =
          Runner.measure ~duration_ns:60_000. ~seed:3
            ~prepare:(fun () ->
              Pstats.set_kind_enabled Pstats.Psync false;
              Pstats.set_kind_enabled Pstats.Pfence false)
            Set_intf.tracking ~threads:4 wl
        in
        Pstats.set_all_enabled true;
        nosync.Runner.throughput_mops /. full.Runner.throughput_mops)
  in
  let with_drain = gain (fun _ -> ()) in
  Alcotest.(check bool)
    (Printf.sprintf "psync removal is minor with CAS drain (%.3f)" with_drain)
    true (with_drain < 1.12)

let test_figures_quick_smoke () =
  let cfg =
    { Figures.quick_config with Figures.sweep = [ 1; 4 ]; duration_ns = 30_000. }
  in
  let fig = Figures.fig_throughput cfg Workload.read_intensive in
  Alcotest.(check string) "id" "3a" fig.Figures.id;
  Alcotest.(check int) "six series" 6 (List.length fig.Figures.series);
  List.iter
    (fun s ->
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "positive values" true (v > 0.))
        s.Figures.values)
    fig.Figures.series;
  let cls = Figures.classification cfg Workload.read_intensive Set_intf.tracking in
  Alcotest.(check bool) "tracking has pwb sites" true (List.length cls >= 8)

(* Soundness relation: any linearizable history must pass the per-key
   oracle (the oracle is a weakening that drops real-time order). *)
let gen_history =
  QCheck2.Gen.(
    list_size (int_range 0 8)
      (map3
         (fun kind k ok -> (kind, k, ok))
         (int_range 0 2) (int_range 0 3) bool))

let prop_oracle_weaker_than_linearize =
  QCheck2.Test.make ~name:"linearizable implies oracle-consistent" ~count:800
    gen_history
    (fun ops ->
      (* sequential (non-overlapping) histories: linearize order is the
         program order *)
      let entries =
        List.mapi
          (fun i (kind, k, ok) ->
            let op =
              match kind with
              | 0 -> Set_intf.Ins k
              | 1 -> Set_intf.Del k
              | _ -> Set_intf.Fnd k
            in
            { Linearize.op; ok; inv = 2 * i; res = (2 * i) + 1 })
          ops
      in
      if not (Linearize.check entries) then true
      else begin
        (* replay to compute the final state *)
        let module IS = Set.Make (Int) in
        let final =
          List.fold_left
            (fun st e ->
              match (e.Linearize.op, e.Linearize.ok) with
              | Set_intf.Ins k, true -> IS.add k st
              | Set_intf.Del k, true -> IS.remove k st
              | _ -> st)
            IS.empty entries
        in
        let events =
          List.map
            (fun e -> { Oracle.eop = e.Linearize.op; ok = e.Linearize.ok })
            entries
        in
        Oracle.check ~initial:[] ~final:(IS.elements final) events = Ok ()
      end)

let test_csv_rendering () =
  let fig =
    {
      Figures.id = "t";
      title = "test";
      ylabel = "y";
      threads = [ 1; 2 ];
      series =
        [
          { Figures.label = "a"; values = [ (1, 1.5); (2, 2.5) ] };
          { Figures.label = "b"; values = [ (1, 0.25) ] };
        ];
    }
  in
  let csv = Report.figure_to_csv fig in
  Alcotest.(check string) "csv" "threads,a,b\n1,1.500,0.250\n2,2.500,\n" csv

let suite =
  [
    Alcotest.test_case "workload mix distribution" `Quick test_workload_mix;
    Alcotest.test_case "odd update remainder splits evenly" `Quick
      test_workload_mix_odd_remainder;
    Alcotest.test_case "skewed keys match the skew parameter" `Quick
      test_workload_skew_ranking;
    Alcotest.test_case "uniform rng stream unchanged" `Quick
      test_workload_uniform_stream_unchanged;
    Alcotest.test_case "by_name error lists valid names" `Quick
      test_by_name_lists_valid_names;
    Alcotest.test_case "prefill reaches ~40%" `Quick test_prefill_fills;
    Alcotest.test_case "runner sanity" `Quick test_runner_sanity;
    Alcotest.test_case "persistence-free is faster" `Quick
      test_persistence_free_is_faster;
    Alcotest.test_case "psync removal minor under CAS drain" `Quick
      test_cas_drain_ablation_shifts_cost;
    Alcotest.test_case "figures quick smoke" `Quick test_figures_quick_smoke;
    Alcotest.test_case "csv rendering" `Quick test_csv_rendering;
    QCheck_alcotest.to_alcotest prop_oracle_weaker_than_linearize;
  ]
