(* The Memento composability layer: checkpoint / detectable-CAS unit
   semantics, the derived List-mmt and Comb-mmt structures (sequential
   model equivalence shared with Tracking, concurrency, crash campaigns
   with oracle verification), and the memento-broken negative control
   that the explorer must catch. *)

module ML = Mlist.Int
module MC = Mcomb.Int
module TL = Rlist.Int
module Cp = Memento.Checkpoint
module D = Memento.Dcas

let fresh_ctx () =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"memento-test" () in
  (heap, Memento.make heap ~threads:4)

let fresh_list () =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"mlist-test" () in
  (heap, ML.create heap ~threads:8)

let fresh_comb () =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"mcomb-test" () in
  (heap, MC.create heap ~threads:8)

let check_inv name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s invariant violation: %s" name msg

(* -- primitives ----------------------------------------------------------- *)

let test_checkpoint_single_assignment () =
  let _, ctx = fresh_ctx () in
  let cp = Cp.make ~name:"t.cp" ctx in
  let h = Memento.my_handle ctx in
  let runs = ref 0 in
  let f () = incr runs; 42 in
  Alcotest.(check (option int)) "nothing recorded yet" None
    (Cp.peek cp h ~seq:1);
  Alcotest.(check int) "first run computes" 42 (Cp.run cp h ~seq:1 f);
  Alcotest.(check int) "replay returns the record" 42 (Cp.run cp h ~seq:1 f);
  Alcotest.(check int) "f ran exactly once" 1 !runs;
  Alcotest.(check (option int)) "peek sees the record" (Some 42)
    (Cp.peek cp h ~seq:1);
  Alcotest.(check (option int)) "other invocations see nothing" None
    (Cp.peek cp h ~seq:2)

let test_dcas_detects_own_success () =
  let heap, ctx = fresh_ctx () in
  let h = Memento.my_handle ctx in
  let fld = Pmem.alloc ~name:"t.cell" heap (D.plain 0) in
  let cur = D.read ctx fld in
  Alcotest.(check bool) "swing succeeds" true
    (D.run h ~seq:1 ~slot:0 fld ~expect:cur ~desired:7);
  (* crash before confirm: the tag is still in place.  A traversal
     (here: the owner's own replay read) helps it — records the outcome
     on the winner's board and untags — so the replay can answer from
     the board instead of guessing from the structure's state. *)
  Alcotest.(check (option bool)) "not yet recorded" None
    (D.known h ~seq:1 ~slot:0);
  let after = D.read ctx fld in
  Alcotest.(check int) "value installed" 7 after.D.v;
  Alcotest.(check bool) "read untagged the cell" true (after.D.tg = None);
  Alcotest.(check (option bool)) "outcome on the board" (Some true)
    (D.known h ~seq:1 ~slot:0);
  D.confirm h ~seq:1 ~slot:0 fld (* idempotent after a helper untagged *)

let test_dcas_failure_is_plain () =
  let heap, ctx = fresh_ctx () in
  let h = Memento.my_handle ctx in
  let fld = Pmem.alloc ~name:"t.cell" heap (D.plain 0) in
  let stale = D.plain 0 in
  (* physically distinct box: the CAS must fail *)
  Alcotest.(check bool) "stale expect fails" false
    (D.run h ~seq:1 ~slot:0 fld ~expect:stale ~desired:9);
  Alcotest.(check int) "value untouched" 0 (D.read ctx fld).D.v;
  Alcotest.(check (option bool)) "no outcome recorded" None
    (D.known h ~seq:1 ~slot:0)

let test_recover_rejects_impossible_timestamp () =
  let _, ctx = fresh_ctx () in
  let h = Memento.my_handle ctx in
  let seq = Memento.begin_op h in
  Alcotest.(check int) "replay runs under the crashed timestamp" seq
    (Memento.recover h ~mseq:seq ~run:(fun ~seq -> seq));
  match Memento.recover h ~mseq:(seq + 5) ~run:(fun ~seq -> seq) with
  | (_ : int) -> Alcotest.fail "a timestamp from the future must be rejected"
  | exception Failure msg ->
      Alcotest.(check bool) "error names the invariant" true
        (String.length msg >= 16
        && String.sub msg 0 16 = "Memento.recover:")

(* -- sequential equivalence: both Memento structures, Tracking, model -- *)

module IS = Set.Make (Stdlib.Int)

type op = I of int | D_ of int | F of int

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> I k) (int_range 0 30);
        map (fun k -> D_ k) (int_range 0 30);
        map (fun k -> F k) (int_range 0 30);
      ])

let prop_frameworks_agree =
  QCheck2.Test.make
    ~name:"List-mmt, Comb-mmt and Tracking agree with the Set model" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) gen_op)
    (fun ops ->
      let _, ml = fresh_list () in
      let _, mc = fresh_comb () in
      Pmem.reset_pending ();
      let heap = Pmem.heap ~name:"rlist-ref" () in
      let tl = TL.create heap ~threads:8 in
      let model = ref IS.empty in
      List.for_all
        (fun op ->
          let expected, mlr, mcr, tlr =
            match op with
            | I k ->
                let e = not (IS.mem k !model) in
                model := IS.add k !model;
                (e, ML.insert ml k, MC.insert mc k, TL.insert tl k)
            | D_ k ->
                let e = IS.mem k !model in
                model := IS.remove k !model;
                (e, ML.delete ml k, MC.delete mc k, TL.delete tl k)
            | F k -> (IS.mem k !model, ML.find ml k, MC.find mc k, TL.find tl k)
          in
          mlr = expected && mcr = expected && tlr = expected)
        ops
      && ML.to_list ml = IS.elements !model
      && MC.to_list mc = IS.elements !model
      && TL.to_list tl = IS.elements !model
      && ML.check_invariants ml = Ok ()
      && MC.check_invariants mc = Ok ())

(* -- concurrency ---------------------------------------------------------- *)

let test_comb_concurrent_disjoint () =
  for seed = 0 to 9 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = MC.create heap ~threads:4 in
    let results = Array.make 4 [] in
    let body tid (_ : int) =
      let base = tid * 100 in
      let r = ref [] in
      for i = 0 to 7 do
        r := MC.insert t (base + i) :: !r
      done;
      for i = 0 to 3 do
        r := MC.delete t (base + (2 * i)) :: !r
      done;
      results.(tid) <- !r
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 4 (fun i -> body i)) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    for tid = 0 to 3 do
      List.iter
        (fun ok -> Alcotest.(check bool) "all ops succeed" true ok)
        results.(tid)
    done;
    let expected =
      List.concat_map
        (fun tid -> List.init 4 (fun i -> (tid * 100) + (2 * i) + 1))
        [ 0; 1; 2; 3 ]
      |> List.sort compare
    in
    Alcotest.(check (list int)) "final contents" expected (MC.to_list t);
    check_inv "mcomb" (MC.check_invariants t)
  done

(* -- crash campaigns (oracle-verified detectability) ---------------------- *)

let campaign fname ~seeds ~threads ~ops ~max_crashes ~key_range =
  let f = Result.get_ok (Set_intf.by_name fname) in
  let cfg =
    Crashes.
      {
        factory = f;
        threads;
        ops_per_thread = ops;
        workload =
          {
            Workload.(default update_intensive) with
            key_range;
            prefill_n = key_range / 2;
          };
        max_crashes;
      }
  in
  match Crashes.run_campaign cfg ~seeds:(List.init seeds Fun.id) with
  | Ok (n, o) ->
      Alcotest.(check int) "all seeds ran" seeds n;
      Alcotest.(check bool) "some crashes actually happened" true
        (o.Crashes.crashes > 0)
  | Error msg -> Alcotest.failf "%s: %s" fname msg

let test_mlist_campaign () =
  campaign "memento-list" ~seeds:40 ~threads:4 ~ops:10 ~max_crashes:3
    ~key_range:24

let test_mlist_small_hot () =
  campaign "memento-list" ~seeds:30 ~threads:6 ~ops:8 ~max_crashes:4
    ~key_range:4

let test_mcomb_campaign () =
  campaign "memento-comb" ~seeds:40 ~threads:4 ~ops:10 ~max_crashes:3
    ~key_range:24

(* -- exploration: clean structures survive, the negative control dies -- *)

(* Single-threaded tree: no scheduling choices, so the bounded search is
   exactly crash-point x write-back resolution and exhausts in
   milliseconds — while still reaching the deep crash points (the
   confirm-side detag flush) that a budgeted 2-thread sweep misses. *)
let explore_cfg ~algo ~seed =
  Explore.
    {
      campaign =
        Crashes.
          {
            factory = Result.get_ok (Set_intf.by_name algo);
            threads = 1;
            ops_per_thread = 3;
            workload =
              {
                (Workload.default Workload.update_intensive) with
                key_range = 3;
                prefill_n = 0;
              };
            max_crashes = 1;
          };
      seed;
      preemptions = 0;
      crashes = 1;
      wb_width = 2;
      max_execs = 0;
    }

let test_memento_survives_full_tree () =
  List.iter
    (fun algo ->
      let o = Explore.run (explore_cfg ~algo ~seed:0) in
      Alcotest.(check bool)
        (algo ^ ": tree exhausted")
        true o.Explore.stats.Explore.complete;
      Alcotest.(check int) (algo ^ ": no failures") 0
        o.Explore.stats.Explore.failures;
      Alcotest.(check bool)
        (algo ^ ": wb choices seen")
        true
        (o.Explore.stats.Explore.wb_choices > 0))
    [ "memento-list"; "memento-comb" ]

let test_broken_memento_found_and_replays () =
  (* seed 0 inserts a fresh key: the elided checkpoint pwb leaves the
     committed result volatile while the link's detectable CAS is
     already durable, and the crash point on the confirm-side detag
     flush (resolution `All) makes the effect durable with no evidence —
     the replay answers false for an insert that happened *)
  let o = Explore.run (explore_cfg ~algo:"memento-broken" ~seed:0) in
  Alcotest.(check bool) "found a violation" true
    (o.Explore.stats.Explore.failures > 0);
  let r =
    match o.Explore.failure with
    | Some r -> r
    | None -> Alcotest.fail "no repro emitted"
  in
  Alcotest.(check string) "repro names the algo" "memento-broken" r.Repro.algo;
  Alcotest.(check bool) "violation blames the oracle" true
    (String.length r.Repro.error >= 7
    && String.sub r.Repro.error 0 7 = "oracle:");
  (* the effect is only durable when the detag write-back survives the
     crash, which `Rng-free exploration expresses as an explicit
     resolution on the crashing round *)
  Alcotest.(check bool) "some round carries an explicit wb" true
    (List.exists (fun rd -> rd.Repro.wb <> `Rng) r.Repro.rounds);
  match Crashes.replay r with
  | Error e -> Alcotest.(check string) "bit-for-bit" r.Repro.error e
  | Ok () -> Alcotest.fail "explorer repro did not reproduce"

let suite =
  [
    Alcotest.test_case "checkpoint is single-assignment per invocation" `Quick
      test_checkpoint_single_assignment;
    Alcotest.test_case "dcas success detectable before confirm" `Quick
      test_dcas_detects_own_success;
    Alcotest.test_case "dcas failure leaves no trace" `Quick
      test_dcas_failure_is_plain;
    Alcotest.test_case "recover rejects impossible timestamps" `Quick
      test_recover_rejects_impossible_timestamp;
    QCheck_alcotest.to_alcotest prop_frameworks_agree;
    Alcotest.test_case "comb concurrent disjoint keys" `Quick
      test_comb_concurrent_disjoint;
    Alcotest.test_case "memento-list crash campaign" `Quick test_mlist_campaign;
    Alcotest.test_case "memento-list hot-key campaign" `Quick
      test_mlist_small_hot;
    Alcotest.test_case "memento-comb crash campaign" `Quick test_mcomb_campaign;
    Alcotest.test_case "clean memento structures survive the full tree" `Quick
      test_memento_survives_full_tree;
    Alcotest.test_case "memento-broken found and replays" `Quick
      test_broken_memento_found_and_replays;
  ]
