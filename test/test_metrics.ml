(* The metrics layer: histogram quantiles against a brute-force oracle,
   the zero-event guarantee when disabled, registry reset between runs,
   span/contention/recovery collection during crash campaigns, the
   Trace.start restart fix, and end-to-end Perfetto conversion. *)

let campaign_cfg ?(threads = 4) ?(ops = 30) ?(max_crashes = 2) () =
  Crashes.
    {
      factory = Set_intf.tracking;
      threads;
      ops_per_thread = ops;
      workload =
        { (Workload.default Workload.update_intensive) with
          key_range = 64;
          prefill_n = 32;
        };
      max_crashes;
    }

let with_metrics f =
  Metrics.enable ();
  Fun.protect ~finally:Metrics.disable f

(* ---- histogram quantiles vs. brute-force oracle ----------------------- *)

(* Log-uniform samples spanning the histogram's whole range. *)
let gen_samples =
  QCheck2.Gen.(
    list_size (int_range 1 400) (map Float.exp2 (float_range 0. 30.)))

let oracle_quantile sorted n q =
  let target =
    let t = int_of_float (Float.ceil (q *. float_of_int n)) in
    if t < 1 then 1 else if t > n then n else t
  in
  List.nth sorted (target - 1)

let prop_quantile_oracle =
  QCheck2.Test.make ~name:"histogram quantiles match oracle within a bucket"
    ~count:300 gen_samples (fun samples ->
      with_metrics @@ fun () ->
      Metrics.reset ();
      let h = Metrics.histogram "test.quantile" in
      List.iter (Metrics.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length samples in
      let s = Metrics.summary h in
      if s.Metrics.count <> n then
        QCheck2.Test.fail_reportf "count %d <> %d" s.Metrics.count n;
      if s.Metrics.max <> List.nth sorted (n - 1) then
        QCheck2.Test.fail_reportf "max %g not exact" s.Metrics.max;
      List.iter
        (fun (q, v) ->
          let o = oracle_quantile sorted n q in
          (* bucket representatives are within 2^(1/8) of the sample at
             that rank; clamping to observed min/max never widens this *)
          let lo = o /. 1.25 and hi = o *. 1.25 in
          if not (v >= lo && v <= hi) then
            QCheck2.Test.fail_reportf "q%.2f: hist %g vs oracle %g (n=%d)" q
              v o n;
          if v < List.hd sorted || v > List.nth sorted (n - 1) then
            QCheck2.Test.fail_reportf "q%.2f out of observed range" q)
        [ (0.5, s.Metrics.p50); (0.9, s.Metrics.p90); (0.99, s.Metrics.p99) ];
      true)

(* ---- disabled path records nothing ------------------------------------ *)

let test_disabled_records_nothing () =
  Metrics.disable ();
  Metrics.reset ();
  (match Crashes.run_once (campaign_cfg ()) ~seed:3 with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "campaign failed: %s" m);
  Alcotest.(check bool) "inactive" false (Metrics.active ());
  Alcotest.(check int) "no events recorded" 0 (Metrics.events_recorded ());
  Alcotest.(check int) "no spans" 0 (List.length (Metrics.spans ()))

(* ---- registry resets between Runner.measure calls --------------------- *)

let test_reset_between_measures () =
  with_metrics @@ fun () ->
  let measure seed =
    Runner.measure ~duration_ns:20_000. ~seed Set_intf.tracking ~threads:3
      (Workload.default Workload.update_intensive)
  in
  let p1 = measure 1 in
  let c1 =
    match Metrics.hist_summary "op" with
    | Some s -> s.Metrics.count
    | None -> -1
  in
  Alcotest.(check int) "first run: one sample per op" p1.Runner.ops c1;
  Alcotest.(check bool) "first run did ops" true (p1.Runner.ops > 0);
  let p2 = measure 2 in
  let c2 =
    match Metrics.hist_summary "op" with
    | Some s -> s.Metrics.count
    | None -> -1
  in
  Alcotest.(check int) "second run: registry was reset" p2.Runner.ops c2

let test_latency_point_fields () =
  let measure () =
    Runner.measure ~duration_ns:20_000. ~seed:1 Set_intf.tracking ~threads:3
      (Workload.default Workload.update_intensive)
  in
  let p = with_metrics measure in
  Alcotest.(check bool) "p50 > 0" true (p.Runner.lat_p50_ns > 0.);
  Alcotest.(check bool) "p50 <= p90" true
    (p.Runner.lat_p50_ns <= p.Runner.lat_p90_ns);
  Alcotest.(check bool) "p90 <= p99" true
    (p.Runner.lat_p90_ns <= p.Runner.lat_p99_ns);
  Alcotest.(check bool) "p99 <= max" true
    (p.Runner.lat_p99_ns <= p.Runner.lat_max_ns);
  let p' = measure () in
  Alcotest.(check (float 0.)) "disabled: zero latency columns" 0.
    p'.Runner.lat_p50_ns;
  Alcotest.(check (float 0.))
    "disabled: same throughput bit-for-bit (zero-overhead path)"
    p.Runner.throughput_mops p'.Runner.throughput_mops

(* ---- spans, contention, recovery from a crash campaign ----------------- *)

let test_campaign_profiles () =
  with_metrics @@ fun () ->
  (* find a seed whose run crashes (run_logged resets metrics on entry,
     so the recorded data is the crashing run's alone) *)
  let rec crashing_run seed =
    if seed > 20 then Alcotest.fail "no seed in 1..20 crashed"
    else
      match Crashes.run_once (campaign_cfg ()) ~seed with
      | Ok o when o.Crashes.crashes > 0 -> o
      | Ok _ -> crashing_run (seed + 1)
      | Error m -> Alcotest.failf "campaign failed: %s" m
  in
  let o = crashing_run 1 in
  Alcotest.(check bool) "campaign crashed" true (o.Crashes.crashes > 0);
  let spans = Metrics.spans () in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  List.iter
    (fun sp ->
      if sp.Metrics.sp_end < sp.Metrics.sp_begin then
        Alcotest.failf "span ends before it begins";
      if
        not
          (List.mem sp.Metrics.sp_kind
             [ "insert"; "delete"; "find"; "recover" ])
      then Alcotest.failf "unexpected span kind %s" sp.Metrics.sp_kind)
    spans;
  Alcotest.(check bool) "recover spans present" true
    (List.exists (fun sp -> sp.Metrics.sp_kind = "recover") spans);
  (match Metrics.hist_summary "op" with
  | None -> Alcotest.fail "no op histogram"
  | Some s ->
      Alcotest.(check bool) "non-degenerate p50 < p99" true
        (s.Metrics.p50 < s.Metrics.p99));
  Alcotest.(check bool) "contention profile non-empty" true
    (Metrics.contention_top 10 <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "contention counts non-negative" true
        (c.Metrics.ct_cas_failures >= 0 && c.Metrics.ct_invalidations >= 0))
    (Metrics.contention_top 10);
  let rec_rounds = Metrics.recovery_durations () in
  Alcotest.(check bool) "recovery durations recorded" true (rec_rounds <> []);
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "recovery duration positive" true (d > 0.))
    rec_rounds

(* ---- Trace.start restart ----------------------------------------------- *)

let read_file path = In_channel.with_open_text path In_channel.input_all

let contains ~affix s =
  let n = String.length s and k = String.length affix in
  let rec go i = i + k <= n && (String.sub s i k = affix || go (i + 1)) in
  go 0

let test_trace_restart_two_files () =
  let a = Filename.temp_file "trace-a" ".jsonl" in
  let b = Filename.temp_file "trace-b" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Trace.stop ();
      Sys.remove a;
      Sys.remove b)
    (fun () ->
      Trace.start a;
      Trace.note "first-sink";
      Trace.start b;
      (* the old sink must be closed and flushed, the new one active *)
      Trace.note "second-sink";
      Trace.stop ();
      let ca = read_file a and cb = read_file b in
      Alcotest.(check bool) "a has its note" true
        (contains ~affix:"first-sink" ca);
      Alcotest.(check bool) "a lacks b's note" false
        (contains ~affix:"second-sink" ca);
      Alcotest.(check bool) "b has its note" true
        (contains ~affix:"second-sink" cb))

let test_trace_restart_same_path () =
  let a = Filename.temp_file "trace-same" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Trace.stop ();
      Sys.remove a)
    (fun () ->
      Trace.start a;
      Trace.note
        "a-deliberately-long-first-marker-so-stale-buffered-bytes-would-show";
      (* restarting into the same path used to truncate the file before
         closing the old channel, whose buffered flush then corrupted it *)
      Trace.start a;
      Trace.note "x";
      Trace.stop ();
      let c = read_file a in
      Alcotest.(check string) "clean single-note file"
        {|{"ev":"note","msg":"x"}|}
        (String.trim c))

(* ---- Perfetto conversion ------------------------------------------------ *)

let test_perfetto_roundtrip () =
  let jsonl = Filename.temp_file "perfetto" ".jsonl" in
  let out = Filename.temp_file "perfetto" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove jsonl;
      Sys.remove out)
    (fun () ->
      let result =
        with_metrics @@ fun () ->
        Trace.with_file jsonl (fun () ->
            Crashes.run_once (campaign_cfg ~threads:3 ~ops:12 ()) ~seed:1)
      in
      (match result with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "campaign failed: %s" m);
      match Perfetto.convert ~jsonl ~out with
      | Error m -> Alcotest.failf "conversion failed: %s" m
      | Ok s -> (
          Alcotest.(check bool) "spans emitted" true (s.Perfetto.out_spans > 0);
          Alcotest.(check int) "one track per thread" 3 s.Perfetto.out_threads;
          match Perfetto.validate_file out with
          | Error m -> Alcotest.failf "validation failed: %s" m
          | Ok v ->
              Alcotest.(check int)
                "validator agrees on span count" s.Perfetto.out_spans
                v.Perfetto.out_spans))

let test_json_parser () =
  let ok s = match Perfetto.parse_json s with Ok _ -> true | Error _ -> false in
  Alcotest.(check bool) "object" true
    (ok {|{"a":1,"b":[true,null,"x\n"],"c":-2.5e3}|});
  Alcotest.(check bool) "nested" true (ok {|[[[{"k":{}}]],[]]|});
  Alcotest.(check bool) "trailing garbage rejected" false (ok {|{} x|});
  Alcotest.(check bool) "unterminated rejected" false (ok {|{"a": [1, 2|});
  Alcotest.(check bool) "bare word rejected" false (ok {|nope|})

let suite =
  [
    QCheck_alcotest.to_alcotest prop_quantile_oracle;
    Alcotest.test_case "disabled path records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "registry resets between measures" `Quick
      test_reset_between_measures;
    Alcotest.test_case "latency columns in Runner.point" `Quick
      test_latency_point_fields;
    Alcotest.test_case "campaign spans/contention/recovery" `Quick
      test_campaign_profiles;
    Alcotest.test_case "Trace.start closes previous sink" `Quick
      test_trace_restart_two_files;
    Alcotest.test_case "Trace.start same-path restart" `Quick
      test_trace_restart_same_path;
    Alcotest.test_case "Perfetto conversion round-trip" `Quick
      test_perfetto_roundtrip;
    Alcotest.test_case "JSON parser corner cases" `Quick test_json_parser;
  ]
