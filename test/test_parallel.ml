(* Parallel campaign fan-out: the whole point of the per-domain substrate
   state is that [-j N] is byte-identical to [-j 1].  These tests lock
   that contract for each parallelized surface, plus the isolation and
   determinism properties it rests on. *)

let explore_cfg ~algo ~seed ~preemptions =
  Explore.
    {
      campaign =
        Crashes.
          {
            factory = Result.get_ok (Set_intf.by_name algo);
            threads = 2;
            ops_per_thread = 1;
            workload =
              {
                (Workload.default Workload.update_intensive) with
                key_range = 4;
                prefill_n = 1;
              };
            max_crashes = 1;
          };
      seed;
      preemptions;
      crashes = 1;
      wb_width = 2;
      max_execs = 0;
    }

let stats_tuple (s : Explore.stats) =
  ( s.Explore.executions,
    s.Explore.failures,
    s.Explore.decision_points,
    s.Explore.crash_points,
    s.Explore.wb_choices,
    s.Explore.pruned,
    s.Explore.complete )

(* A repro is compared through its saved byte representation — exactly
   what `repro explore -j N --repro FILE` writes. *)
let repro_bytes = function
  | None -> ""
  | Some r ->
      let f = Filename.temp_file "parallel_repro" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove f)
        (fun () ->
          Repro.save f r;
          let ic = open_in_bin f in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic)))

let test_explore_jobs_identical () =
  (* exhausted tree, no failures: stats must agree exactly *)
  let cfg = explore_cfg ~algo:"tracking" ~seed:1 ~preemptions:1 in
  let o1 = Explore.run ~stop_on_failure:false ~jobs:1 cfg in
  let o2 = Explore.run ~stop_on_failure:false ~jobs:2 cfg in
  let o4 = Explore.run ~stop_on_failure:false ~jobs:4 cfg in
  Alcotest.(check bool) "j1 tree exhausted" true o1.Explore.stats.complete;
  Alcotest.(check (list int))
    "j2 stats = j1 stats"
    (let a, b, c, d, e, f, _ = stats_tuple o1.Explore.stats in
     [ a; b; c; d; e; f ])
    (let a, b, c, d, e, f, _ = stats_tuple o2.Explore.stats in
     [ a; b; c; d; e; f ]);
  Alcotest.(check bool) "j2 complete" true o2.Explore.stats.complete;
  Alcotest.(check (list int))
    "j4 stats = j1 stats"
    (let a, b, c, d, e, f, _ = stats_tuple o1.Explore.stats in
     [ a; b; c; d; e; f ])
    (let a, b, c, d, e, f, _ = stats_tuple o4.Explore.stats in
     [ a; b; c; d; e; f ])

let test_explore_jobs_same_counterexample () =
  (* the broken variant: the first counterexample (and hence the repro
     file) must be bit-identical across -j values, keep-going or not *)
  let cfg = explore_cfg ~algo:"tracking-broken" ~seed:1 ~preemptions:0 in
  let check_pair label o1 oN =
    Alcotest.(check bool)
      (label ^ ": both found a failure")
      true
      (o1.Explore.failure <> None && oN.Explore.failure <> None);
    Alcotest.(check string)
      (label ^ ": repro bytes identical")
      (repro_bytes o1.Explore.failure)
      (repro_bytes oN.Explore.failure)
  in
  let o1 = Explore.run ~jobs:1 cfg in
  let o2 = Explore.run ~jobs:2 cfg in
  check_pair "stop-on-failure" o1 o2;
  let k1 = Explore.run ~stop_on_failure:false ~jobs:1 cfg in
  let k2 = Explore.run ~stop_on_failure:false ~jobs:2 cfg in
  check_pair "keep-going" k1 k2;
  Alcotest.(check int)
    "keep-going failure counts agree" k1.Explore.stats.failures
    k2.Explore.stats.failures

let test_causal_jobs_identical () =
  let factory = Result.get_ok (Set_intf.by_name "tracking") in
  let cfg =
    {
      (Causal.quick_config factory Workload.update_intensive) with
      Causal.threads = 3;
      ops_per_thread = 12;
      mechanisms = [ "pwb_latency"; "cas_drains_wb" ];
    }
  in
  let p1 = Causal.profile ~jobs:1 cfg in
  let p2 = Causal.profile ~jobs:3 cfg in
  Alcotest.(check string)
    "JSON byte-identical" (Causal.to_json p1) (Causal.to_json p2);
  Alcotest.(check string)
    "CSV byte-identical" (Causal.to_csv p1) (Causal.to_csv p2)

let store_cfg () =
  let factory = Result.get_ok (Set_intf.by_name "tracking") in
  {
    (Store.default_config factory) with
    Store.shards = 3;
    clients = 2;
    ops_per_client = 12;
    seed = 1;
  }

let test_store_explore_jobs_identical () =
  let go jobs =
    match Store.explore ~dispatch_budget:6 ~jobs (store_cfg ()) with
    | Ok s -> s
    | Error e -> Alcotest.fail ("store explore failed: " ^ e)
  in
  let s1 = go 1 and s2 = go 2 in
  Alcotest.(check int) "executions" s1.Store.ex_executions s2.Store.ex_executions;
  Alcotest.(check int) "fired" s1.Store.ex_fired s2.Store.ex_fired;
  Alcotest.(check int) "failures" s1.Store.ex_failures s2.Store.ex_failures;
  Alcotest.(check (array (pair string int)))
    "max dispatch per victim" s1.Store.ex_max_dispatch s2.Store.ex_max_dispatch;
  Alcotest.(check (option string))
    "first failure" s1.Store.ex_first_failure s2.Store.ex_first_failure

(* Two simulations interleaved on separate domains: each domain's Pmem
   instance owns its own write-pending queues, so neither run may
   observe the other's outstanding write-backs (the historical global
   queue array made this exact scenario corrupt both runs). *)
let test_interleaved_runs_isolated () =
  let site = Pstats.make Pwb "test_parallel.pwb" in
  let run_one tag =
    let h = Pmem.heap ~name:(Printf.sprintf "iso-%d" tag) () in
    let seen = ref (-1) in
    let body _tid =
      let c = Pmem.alloc h tag in
      (* several steps so the two domains' runs genuinely interleave *)
      for i = 1 to 20 do
        Pmem.write c (tag + i);
        Pmem.pwb_f site c;
        Sim.step 5.
      done;
      seen := Pmem.outstanding_writebacks 0
    in
    (match Sim.run ~seed:tag [| body |] with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    !seen
  in
  let d1 = Domain.spawn (fun () -> run_one 1000) in
  let d2 = Domain.spawn (fun () -> run_one 2000) in
  let w1 = Domain.join d1 and w2 = Domain.join d2 in
  (* each run issued 20 pwbs of one line with no sync: exactly its own
     pending entries are visible, none of the other domain's *)
  Alcotest.(check int) "domain 1 sees only its own write-backs" 20 w1;
  Alcotest.(check int) "domain 2 sees only its own write-backs" 20 w2

(* Work-item results are pure functions of (seed, index): completing
   items in a different order must leave every per-item result unchanged.
   This is the RNG-audit regression: any hidden shared Random.State
   would make results order-sensitive. *)
let test_completion_order_insensitive () =
  let item seed idx =
    let h = Pmem.heap ~name:(Printf.sprintf "perm-%d" idx) () in
    let acc = ref 0 in
    let body tid =
      let rng = Random.State.make [| seed; idx; tid |] in
      let c = Pmem.alloc h 0 in
      for _ = 1 to 10 do
        let v = Random.State.int rng 1000 in
        Pmem.write c v;
        Sim.step 1.;
        acc := !acc + Pmem.read c
      done
    in
    (match Sim.run ~seed:(seed + idx) [| body; body |] with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    !acc
  in
  let n = 8 in
  let forward = Array.init n (fun i -> item 42 i) in
  let backward = Array.init n (fun i -> item 42 (n - 1 - i)) in
  for i = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "item %d result independent of completion order" i)
      forward.(i)
      backward.(n - 1 - i)
  done;
  (* and the same items through the pool give the same results *)
  let pooled = Parallel.run ~jobs:2 (fun i () -> item 42 i) (Array.make n ()) in
  Alcotest.(check (array int)) "pooled = sequential" forward pooled

let test_parallel_run_basics () =
  (* merge is by index, not completion order *)
  let r =
    Parallel.run ~jobs:3 (fun i x -> (i * 10) + x) (Array.init 17 (fun i -> i))
  in
  Alcotest.(check (array int)) "indexed merge" (Array.init 17 (fun i -> i * 11)) r;
  (* lowest-index failure attribution *)
  let r = [| Ok 0; Error "a"; Ok 2; Error "b" |] in
  (match Parallel.first_failure Result.is_error r with
  | Some (1, Error "a") -> ()
  | _ -> Alcotest.fail "first_failure must pick the lowest index");
  (* exceptions propagate from the pool *)
  match
    Parallel.run ~jobs:2
      (fun i () -> if i >= 2 then failwith (string_of_int i) else i)
      (Array.make 6 ())
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "worker exception must propagate"

let suite =
  [
    Alcotest.test_case "parallel driver basics" `Quick test_parallel_run_basics;
    Alcotest.test_case "explore -j N = -j 1 (stats)" `Quick
      test_explore_jobs_identical;
    Alcotest.test_case "explore -j N = -j 1 (counterexample bytes)" `Quick
      test_explore_jobs_same_counterexample;
    Alcotest.test_case "causal -j N = -j 1 (JSON/CSV bytes)" `Quick
      test_causal_jobs_identical;
    Alcotest.test_case "store explore -j N = -j 1" `Quick
      test_store_explore_jobs_identical;
    Alcotest.test_case "interleaved runs on two domains are isolated" `Quick
      test_interleaved_runs_isolated;
    Alcotest.test_case "work items insensitive to completion order" `Quick
      test_completion_order_insensitive;
  ]
