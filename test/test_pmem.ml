(* Semantics of the simulated NVMM: flush/sync protocol, crash behaviour,
   poisoning, fence ordering, per-location monotonicity. *)

let site_pwb = Pstats.make Pwb "test.pwb"
let site_fence = Pstats.make Pfence "test.pfence"
let site_sync = Pstats.make Psync "test.psync"

let fresh () =
  Pmem.reset_pending ();
  Pstats.set_all_enabled true;
  Pmem.heap ~name:"pmem-test" ()

let test_read_write () =
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  Alcotest.(check int) "initial" 1 (Pmem.read c);
  Pmem.write c 2;
  Alcotest.(check int) "after write" 2 (Pmem.read c);
  Alcotest.(check bool) "cas wrong expected" false (Pmem.cas c 1 3);
  Alcotest.(check bool) "cas right expected" true (Pmem.cas c 2 3);
  Alcotest.(check int) "after cas" 3 (Pmem.read c)

let test_unflushed_lost () =
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  Pmem.pwb_f site_pwb c;
  Pmem.psync site_sync;
  Pmem.write c 2;
  (* no pwb for the 2 *)
  Pmem.crash h;
  Alcotest.(check int) "reverts to persisted" 1 (Pmem.read c)

let test_flushed_survives () =
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  Pmem.write c 2;
  Pmem.pwb_f site_pwb c;
  Pmem.psync site_sync;
  Pmem.crash h;
  Alcotest.(check int) "persisted" 2 (Pmem.read c)

let test_never_flushed_poisons () =
  let h = fresh () in
  let c = Pmem.alloc h 42 in
  Pmem.crash h;
  Alcotest.(check bool) "poisoned" true (Pmem.is_poisoned c);
  (match Pmem.read c with
  | _ -> Alcotest.fail "read of poisoned cell must raise"
  | exception Pmem.Poisoned _ -> ());
  match Pmem.write c 1 with
  | () -> Alcotest.fail "write of poisoned cell must raise"
  | exception Pmem.Poisoned _ -> ()

let test_pwb_without_sync_dropped () =
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  Pmem.pwb_f site_pwb c;
  (* harshest adversary: outstanding write-backs are dropped *)
  Pmem.crash h;
  Alcotest.(check bool) "still unpersisted" true (Pmem.is_poisoned c)

let test_line_granularity () =
  let h = fresh () in
  let line = Pmem.new_line h in
  let a = Pmem.on_line line 1 in
  let b = Pmem.on_line line 10 in
  Pmem.write a 2;
  Pmem.write b 20;
  (* one pwb persists the whole line *)
  Pmem.pwb site_pwb line;
  Pmem.psync site_sync;
  Pmem.crash h;
  Alcotest.(check int) "field a" 2 (Pmem.read a);
  Alcotest.(check int) "field b" 20 (Pmem.read b)

let test_cas_drains_writebacks () =
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  let d = Pmem.alloc h 100 in
  Pmem.pwb_f site_pwb d;
  (* no psync: the CAS plays sfence on Intel (paper §5) *)
  Alcotest.(check bool) "cas ok" true (Pmem.cas c 1 2);
  Pmem.crash h;
  Alcotest.(check int) "d persisted by the cas drain" 100 (Pmem.read d)

let test_cas_drain_ablatable () =
  Cost.with_table
    (fun t -> t.Cost.cas_drains_wb <- false)
    (fun () ->
      let h = fresh () in
      let c = Pmem.alloc h 1 in
      let d = Pmem.alloc h 100 in
      Pmem.pwb_f site_pwb d;
      ignore (Pmem.cas c 1 2 : bool);
      Pmem.crash h;
      Alcotest.(check bool) "d not persisted" true (Pmem.is_poisoned d))

let test_fence_ordering_at_crash () =
  (* Across many adversarial resolutions, a later segment must never
     persist unless every earlier segment fully persisted. *)
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 200 do
    let h = fresh () in
    let a = Pmem.alloc h 0 and b = Pmem.alloc h 0 in
    Pmem.write a 1;
    Pmem.pwb_f site_pwb a;
    Pmem.pfence site_fence;
    Pmem.write b 1;
    Pmem.pwb_f site_pwb b;
    Pmem.crash ~rng h;
    let pa = Pmem.peek_persisted a and pb = Pmem.peek_persisted b in
    if pb = Some 1 && pa <> Some 1 then
      Alcotest.fail "pfence violated: b persisted before a"
  done

let test_per_location_monotonic () =
  (* Once a newer value is durable, no stale write-back may roll it
     back (the coherence property behind the Capsules bug we fixed). *)
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 200 do
    let h = fresh () in
    let a = Pmem.alloc h 0 in
    Pmem.write a 1;
    Pmem.pwb_f site_pwb a;
    Pmem.write a 2;
    Pmem.pwb_f site_pwb a;
    Pmem.psync site_sync;
    (* a=2 durable; an outstanding stale-looking pwb must not undo it *)
    Pmem.pwb_f site_pwb a;
    Pmem.crash ~rng h;
    Alcotest.(check int) "monotone" 2 (Pmem.read a)
  done

let test_system_persist () =
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  Pmem.system_persist c 7;
  Pmem.crash h;
  Alcotest.(check int) "system persist is crash-atomic" 7 (Pmem.read c)

let test_disabled_site_is_noop () =
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  Pstats.set_enabled site_pwb false;
  Pmem.write c 2;
  Pmem.pwb_f site_pwb c;
  Pmem.psync site_sync;
  Pstats.set_enabled site_pwb true;
  Pmem.crash h;
  Alcotest.(check bool) "nothing persisted" true (Pmem.is_poisoned c)

let test_stats_counting () =
  Pstats.reset ();
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  Pmem.pwb_f site_pwb c;
  Pmem.pwb_f site_pwb c;
  Pmem.pfence site_fence;
  Pmem.psync site_sync;
  let t = Pstats.totals () in
  Alcotest.(check int) "pwbs" 2 t.Pstats.pwbs;
  Alcotest.(check int) "pfences" 1 t.Pstats.pfences;
  Alcotest.(check int) "psyncs" 1 t.Pstats.psyncs;
  Alcotest.(check int) "all low (private)" 2 t.Pstats.low

let test_outstanding_accounting () =
  let h = fresh () in
  let c = Pmem.alloc h 1 in
  Pmem.pwb_f site_pwb c;
  Pmem.pwb_f site_pwb c;
  Alcotest.(check int) "two outstanding" 2 (Pmem.outstanding_writebacks 0);
  Pmem.psync site_sync;
  Alcotest.(check int) "drained" 0 (Pmem.outstanding_writebacks 0)

let test_queue_bound_completes_writebacks () =
  (* The write-pending queue bound must make room by *completing* the
     oldest write-back, skipping over bare fences.  The old bound popped
     exactly one entry — often a Fence — so under a pwb;pfence-heavy loop
     the Apply entries piled up without limit. *)
  let h = fresh () in
  let c = Pmem.alloc h 0 in
  let n = 300 in
  for i = 1 to n do
    Pmem.write c i;
    Pmem.pwb_f site_pwb c;
    Pmem.pfence site_fence
  done;
  Alcotest.(check bool)
    (Printf.sprintf "outstanding applies bounded (%d)"
       (Pmem.outstanding_writebacks 0))
    true
    (Pmem.outstanding_writebacks 0 <= 66);
  (* and the completed write-backs really persisted *)
  match Pmem.peek_persisted c with
  | Some v -> Alcotest.(check bool) "persistence progressed" true (v > 0)
  | None -> Alcotest.fail "nothing persisted despite 300 bounded flushes"

let test_heap_crash_isolation () =
  (* The property shard-local recovery builds on: a crash of one heap
     must not perturb another heap's persisted OR pending state. *)
  let _ = fresh () in
  let victim = Pmem.heap ~name:"victim" () in
  let survivor = Pmem.heap ~name:"survivor" () in
  let v = Pmem.alloc victim 1 in
  let s = Pmem.alloc survivor 10 in
  (* survivor: 10 durable, 20 written + flushed but NOT yet synced *)
  Pmem.pwb_f site_pwb s;
  Pmem.psync site_sync;
  Pmem.write s 20;
  Pmem.pwb_f site_pwb s;
  (* victim: 2 written + flushed, unsynced — lost by its crash *)
  Pmem.write v 2;
  Pmem.pwb_f site_pwb v;
  Pmem.crash ~scope:`Heap victim;
  Alcotest.(check bool) "victim unsynced flush dropped" true
    (Pmem.is_poisoned v);
  Alcotest.(check int) "survivor volatile state intact" 20 (Pmem.peek s);
  Alcotest.(check (option int))
    "survivor pending write-back still pending" (Some 10)
    (Pmem.peek_persisted s);
  (* the survivor's outstanding write-back still completes on sync *)
  Pmem.psync site_sync;
  Alcotest.(check (option int))
    "survivor write-back completes after the crash" (Some 20)
    (Pmem.peek_persisted s)

let test_heap_crash_resolution_counts_victim_only () =
  (* [`Prefix k] under [`Heap] scope counts the victim's write-backs:
     interleaved survivor entries must not consume the budget. *)
  let _ = fresh () in
  let victim = Pmem.heap ~name:"victim" () in
  let survivor = Pmem.heap ~name:"survivor" () in
  let a = Pmem.alloc victim 0 and b = Pmem.alloc victim 0 in
  let s = Pmem.alloc survivor 0 in
  Pmem.write a 1;
  Pmem.pwb_f site_pwb a;
  Pmem.write s 1;
  Pmem.pwb_f site_pwb s;
  Pmem.write b 1;
  Pmem.pwb_f site_pwb b;
  Pmem.crash ~resolution:(`Prefix 1) ~scope:`Heap victim;
  Alcotest.(check int) "victim's oldest write-back completed" 1 (Pmem.peek a);
  Alcotest.(check bool) "victim's second write-back dropped" true
    (Pmem.is_poisoned b);
  Alcotest.(check (option int))
    "survivor entry neither completed nor dropped" None
    (Pmem.peek_persisted s);
  Alcotest.(check int) "survivor entry still queued" 1
    (Pmem.outstanding_writebacks 0)

let test_machine_crash_hits_all_queues () =
  (* Contrast case: the default [`Machine] scope resolves every queue,
     so the survivor heap's pending write-back is dropped too (its
     durable state is of course still per-heap: only the victim's
     fields are reset). *)
  let _ = fresh () in
  let victim = Pmem.heap ~name:"victim" () in
  let survivor = Pmem.heap ~name:"survivor" () in
  let v = Pmem.alloc victim 1 in
  let s = Pmem.alloc survivor 10 in
  Pmem.write v 2;
  Pmem.pwb_f site_pwb v;
  Pmem.write s 20;
  Pmem.pwb_f site_pwb s;
  Pmem.crash victim;
  Alcotest.(check bool) "victim poisoned" true (Pmem.is_poisoned v);
  Alcotest.(check int) "no survivor write-backs left" 0
    (Pmem.outstanding_writebacks 0);
  Pmem.psync site_sync;
  Alcotest.(check (option int)) "survivor write-back was dropped" None
    (Pmem.peek_persisted s)

let test_heap_crash_preserves_fence_ordering () =
  (* Victim segments are still fence-delimited under [`Heap] scope, even
     with survivor entries interleaved between the fences. *)
  let rng = Random.State.make [| 23 |] in
  for _ = 1 to 200 do
    let _ = fresh () in
    let victim = Pmem.heap ~name:"victim" () in
    let survivor = Pmem.heap ~name:"survivor" () in
    let a = Pmem.alloc victim 0 and b = Pmem.alloc victim 0 in
    let s = Pmem.alloc survivor 0 in
    Pmem.write a 1;
    Pmem.pwb_f site_pwb a;
    Pmem.write s 1;
    Pmem.pwb_f site_pwb s;
    Pmem.pfence site_fence;
    Pmem.write b 1;
    Pmem.pwb_f site_pwb b;
    Pmem.crash ~rng ~scope:`Heap victim;
    let pa = Pmem.peek_persisted a and pb = Pmem.peek_persisted b in
    if pb = Some 1 && pa <> Some 1 then
      Alcotest.fail "pfence violated under `Heap scope: b persisted before a"
  done

let prop_random_crash_consistency =
  QCheck2.Test.make ~name:"crash yields a persisted-prefix state per cell"
    ~count:200
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let h = fresh () in
      let cells = Array.init 8 (fun _ -> Pmem.alloc h 0) in
      let history = Array.make 8 [ 0 ] in
      for step = 1 to 40 do
        let i = Random.State.int rng 8 in
        match Random.State.int rng 3 with
        | 0 ->
            Pmem.write cells.(i) step;
            history.(i) <- step :: history.(i)
        | 1 -> Pmem.pwb_f site_pwb cells.(i)
        | _ -> Pmem.psync site_sync
      done;
      Pmem.crash ~rng h;
      (* each surviving value must be SOME value the cell actually held *)
      Array.for_all2
        (fun c hist ->
          Pmem.is_poisoned c || List.mem (Pmem.peek c) hist)
        cells history)

let suite =
  [
    Alcotest.test_case "read-write-cas" `Quick test_read_write;
    Alcotest.test_case "unflushed write lost at crash" `Quick
      test_unflushed_lost;
    Alcotest.test_case "flushed write survives crash" `Quick
      test_flushed_survives;
    Alcotest.test_case "never-flushed cell poisons" `Quick
      test_never_flushed_poisons;
    Alcotest.test_case "pwb without psync may be dropped" `Quick
      test_pwb_without_sync_dropped;
    Alcotest.test_case "pwb persists the whole line" `Quick
      test_line_granularity;
    Alcotest.test_case "CAS drains outstanding write-backs" `Quick
      test_cas_drains_writebacks;
    Alcotest.test_case "CAS drain can be ablated" `Quick
      test_cas_drain_ablatable;
    Alcotest.test_case "pfence ordering respected at crash" `Quick
      test_fence_ordering_at_crash;
    Alcotest.test_case "per-location durability is monotone" `Quick
      test_per_location_monotonic;
    Alcotest.test_case "system_persist crash-atomic" `Quick
      test_system_persist;
    Alcotest.test_case "disabled site is a no-op" `Quick
      test_disabled_site_is_noop;
    Alcotest.test_case "statistics counting" `Quick test_stats_counting;
    Alcotest.test_case "outstanding write-back accounting" `Quick
      test_outstanding_accounting;
    Alcotest.test_case "queue bound completes write-backs" `Quick
      test_queue_bound_completes_writebacks;
    Alcotest.test_case "heap-scoped crash isolates other heaps" `Quick
      test_heap_crash_isolation;
    Alcotest.test_case "heap-scoped prefix counts victim write-backs" `Quick
      test_heap_crash_resolution_counts_victim_only;
    Alcotest.test_case "machine-scoped crash resolves all queues" `Quick
      test_machine_crash_hits_all_queues;
    Alcotest.test_case "heap-scoped crash respects pfence ordering" `Quick
      test_heap_crash_preserves_fence_ordering;
    QCheck_alcotest.to_alcotest prop_random_crash_consistency;
  ]
