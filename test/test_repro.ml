(* Deterministic trace/replay of crash campaigns.  The negative-control
   [tracking-broken] variant (new-node pwb elided) must fail campaigns;
   the failure must save as a repro, replay bit-for-bit, shrink to a tiny
   counterexample, and trace as well-formed JSONL. *)

let broken_cfg ~threads ~ops =
  Crashes.
    {
      factory = Result.get_ok (Set_intf.by_name "tracking-broken");
      threads;
      ops_per_thread = ops;
      workload =
        {
          (Workload.default Workload.update_intensive) with
          key_range = 64;
          prefill_n = 32;
        };
      max_crashes = 3;
    }

(* First failing seed of a small campaign, with its recorded rounds. *)
let find_failure () =
  let cfg = broken_cfg ~threads:4 ~ops:10 in
  let rec go seed =
    if seed > 200 then Alcotest.fail "broken variant never failed in 200 seeds"
    else
      match Crashes.run_logged cfg ~seed with
      | Error error, rounds -> (cfg, seed, error, rounds)
      | Ok _, _ -> go (seed + 1)
  in
  go 0

let test_broken_variant_replays () =
  let cfg, seed, error, rounds = find_failure () in
  let r = Crashes.repro_of cfg ~seed ~error ~rounds in
  (match Crashes.replay r with
  | Error e -> Alcotest.(check string) "identical failure" error e
  | Ok () -> Alcotest.fail "replay did not reproduce the failure");
  (* replay is itself deterministic *)
  match Crashes.replay r with
  | Error e -> Alcotest.(check string) "identical failure again" error e
  | Ok () -> Alcotest.fail "second replay did not reproduce the failure"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let with_temp_file f =
  let path = Filename.temp_file "tracking-nvm" ".tmp" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_run_once_saves_loadable_repro () =
  let cfg, seed, _, _ = find_failure () in
  with_temp_file (fun path ->
      match Crashes.run_once ~repro_file:path cfg ~seed with
      | Ok _ -> Alcotest.fail "expected the recorded seed to fail again"
      | Error error -> (
          match Repro.load path with
          | Error e -> Alcotest.fail ("load: " ^ e)
          | Ok r -> (
              Alcotest.(check string) "algo" "tracking-broken" r.Repro.algo;
              Alcotest.(check int) "seed" seed r.Repro.seed;
              Alcotest.(check string) "error" error r.Repro.error;
              Alcotest.(check bool) "has rounds" true (r.Repro.rounds <> []);
              match Crashes.replay r with
              | Error e -> Alcotest.(check string) "file replays" error e
              | Ok () -> Alcotest.fail "saved repro did not reproduce")))

let test_save_load_roundtrip () =
  let cfg, seed, error, rounds = find_failure () in
  let r = Crashes.repro_of cfg ~seed ~error ~rounds in
  with_temp_file (fun path ->
      Repro.save path r;
      match Repro.load path with
      | Error e -> Alcotest.fail e
      | Ok r' ->
          Alcotest.(check string) "algo" r.Repro.algo r'.Repro.algo;
          Alcotest.(check int) "threads" r.Repro.threads r'.Repro.threads;
          Alcotest.(check int) "ops" r.Repro.ops_per_thread r'.Repro.ops_per_thread;
          Alcotest.(check int) "find-pct" r.Repro.find_pct r'.Repro.find_pct;
          Alcotest.(check int) "key-range" r.Repro.key_range r'.Repro.key_range;
          Alcotest.(check int) "prefill" r.Repro.prefill r'.Repro.prefill;
          Alcotest.(check int) "max-crashes" r.Repro.max_crashes r'.Repro.max_crashes;
          Alcotest.(check int) "seed" r.Repro.seed r'.Repro.seed;
          Alcotest.(check string) "error" r.Repro.error r'.Repro.error;
          List.iter2
            (fun (a : Repro.round) (b : Repro.round) ->
              Alcotest.(check bool) "round kind" true (a.Repro.kind = b.Repro.kind);
              Alcotest.(check int) "round crash" a.Repro.crash_at b.Repro.crash_at;
              Alcotest.(check (array int))
                "round schedule" a.Repro.schedule b.Repro.schedule;
              Alcotest.(check bool) "round wb" true (a.Repro.wb = b.Repro.wb))
            r.Repro.rounds r'.Repro.rounds)

(* pp/load round-trip over arbitrary well-formed repros: every value the
   printer can emit must load back identically. *)
let gen_repro =
  let open QCheck.Gen in
  let gen_round =
    let* kind = oneofl [ `Work; `Recover ] in
    let* crash_at = frequency [ (1, return (-1)); (3, int_range 1 200) ] in
    let* schedule = array_size (int_range 0 12) (int_range 0 7) in
    let* wb =
      oneof
        [
          return `Rng; return `Drop; return `All;
          map (fun k -> `Prefix k) (int_range 1 9);
        ]
    in
    return { Repro.kind; crash_at; schedule; wb }
  in
  let* algo = oneofl [ "tracking"; "tracking-broken"; "capsules-opt" ] in
  let* threads = int_range 1 8 in
  let* ops_per_thread = int_range 1 30 in
  let* find_pct = int_range 0 100 in
  let* key_range = int_range 1 128 in
  let* prefill = int_range 0 64 in
  let* max_crashes = int_range 1 6 in
  let* seed = int_range 0 10_000 in
  let* error =
    oneofl
      [
        "oracle: key 3: phantom response";
        "poison: touched never-persisted data: node:7";
        "invariant: order violation: 5 before 2";
      ]
  in
  let* rounds = list_size (int_range 0 6) gen_round in
  return
    {
      Repro.algo; threads; ops_per_thread; find_pct; key_range; prefill;
      max_crashes; seed; error; rounds;
    }

let test_qcheck_pp_load_roundtrip () =
  let prop r =
    with_temp_file (fun path ->
        Repro.save path r;
        match Repro.load path with
        | Error e -> QCheck.Test.fail_reportf "load failed: %s" e
        | Ok r' -> r = r')
  in
  let cell =
    QCheck.Test.make ~count:200 ~name:"repro pp/load round-trip"
      (QCheck.make gen_repro ~print:(fun r -> Format.asprintf "%a" Repro.pp r))
      prop
  in
  QCheck.Test.check_exn cell

(* Malformed files must be rejected with an error, never silently
   accepted: a vacuous config "replays" successfully while reproducing
   nothing. *)
let test_malformed_corpus () =
  let header =
    "tracking-nvm-repro v1\nalgo tracking\nthreads 2\nops-per-thread 3\n\
     find-pct 30\nkey-range 8\nprefill 4\nmax-crashes 2\nseed 7\nerror x\n"
  in
  let cases =
    [
      ("empty file", "");
      ("bad magic", "some-other-format v9\n" ^ header);
      ("missing algo", "tracking-nvm-repro v1\nthreads 2\nops-per-thread 3\n\
                        find-pct 30\nkey-range 8\nprefill 4\nmax-crashes 2\n\
                        seed 7\nerror x\n");
      ("zero threads", String.concat "\n"
         [ "tracking-nvm-repro v1"; "algo tracking"; "threads 0";
           "ops-per-thread 3"; "find-pct 30"; "key-range 8"; "prefill 4";
           "max-crashes 2"; "seed 7"; "error x"; "" ]);
      ("zero ops-per-thread", String.concat "\n"
         [ "tracking-nvm-repro v1"; "algo tracking"; "threads 2";
           "ops-per-thread 0"; "find-pct 30"; "key-range 8"; "prefill 4";
           "max-crashes 2"; "seed 7"; "error x"; "" ]);
      ("zero key-range", String.concat "\n"
         [ "tracking-nvm-repro v1"; "algo tracking"; "threads 2";
           "ops-per-thread 3"; "find-pct 30"; "key-range 0"; "prefill 4";
           "max-crashes 2"; "seed 7"; "error x"; "" ]);
      ("zero max-crashes", String.concat "\n"
         [ "tracking-nvm-repro v1"; "algo tracking"; "threads 2";
           "ops-per-thread 3"; "find-pct 30"; "key-range 8"; "prefill 4";
           "max-crashes 0"; "seed 7"; "error x"; "" ]);
      ("negative prefill", String.concat "\n"
         [ "tracking-nvm-repro v1"; "algo tracking"; "threads 2";
           "ops-per-thread 3"; "find-pct 30"; "key-range 8"; "prefill -1";
           "max-crashes 2"; "seed 7"; "error x"; "" ]);
      ("find-pct out of range", String.concat "\n"
         [ "tracking-nvm-repro v1"; "algo tracking"; "threads 2";
           "ops-per-thread 3"; "find-pct 140"; "key-range 8"; "prefill 4";
           "max-crashes 2"; "seed 7"; "error x"; "" ]);
      ("unknown field", header ^ "wibble 3\n");
      ("duplicate key", header ^ "threads 4\n");
      ("bad integer", "tracking-nvm-repro v1\nalgo tracking\nthreads two\n");
      ("bad round kind", header ^ "round sleep 5 0,1\n");
      ("bad round crash point", header ^ "round work x 0,1\n");
      ("bad round schedule", header ^ "round work 5 0,one,2\n");
      ("bad round wb", header ^ "round work 5 0,1 sometimes\n");
      ("bad round wb prefix", header ^ "round work 5 0,1 prefix:0\n");
      ("truncated round line", header ^ "round work\n");
    ]
  in
  List.iter
    (fun (name, contents) ->
      with_temp_file (fun path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc contents);
          match Repro.load path with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "%s: accepted" name))
    cases

(* A hand-corrupted schedule must fail the replay with a divergence
   report — never silently re-randomize into a "successful" replay. *)
let test_corrupted_schedule_diverges () =
  let cfg, seed, error, rounds = find_failure () in
  let r = Crashes.repro_of cfg ~seed ~error ~rounds in
  let corrupt (rd : Repro.round) =
    (* tid 61 exists in no campaign here: the entry can never be honored *)
    let s = Array.copy rd.Repro.schedule in
    if Array.length s > 0 then s.(Array.length s / 2) <- 61;
    { rd with Repro.schedule = s }
  in
  let r = { r with Repro.rounds = List.map corrupt r.Repro.rounds } in
  match Crashes.replay r with
  | Ok () -> Alcotest.fail "corrupted replay claimed success"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the divergence (%s)" e)
        true
        (starts_with ~prefix:"schedule divergence" e)

let test_shrink_minimizes () =
  let cfg, seed, error, rounds = find_failure () in
  let r = Crashes.repro_of cfg ~seed ~error ~rounds in
  let s = Crashes.shrink r in
  Alcotest.(check bool)
    (Printf.sprintf "threads shrunk to %d" s.Repro.threads)
    true (s.Repro.threads <= 2);
  Alcotest.(check bool)
    (Printf.sprintf "ops/thread shrunk to %d" s.Repro.ops_per_thread)
    true (s.Repro.ops_per_thread <= 4);
  (* the shrinker may only adopt probes failing with the original bug *)
  let error_class e =
    match String.index_opt e ':' with Some i -> String.sub e 0 i | None -> e
  in
  Alcotest.(check string) "shrunk error is the original bug"
    (error_class error) (error_class s.Repro.error);
  (* the shrunk repro is itself a faithful, replayable counterexample *)
  match Crashes.replay s with
  | Error e -> Alcotest.(check string) "shrunk failure replays" s.Repro.error e
  | Ok () -> Alcotest.fail "shrunk repro did not reproduce"

let test_trace_is_wellformed_jsonl () =
  with_temp_file (fun path ->
      let cfg = broken_cfg ~threads:2 ~ops:4 in
      Trace.with_file path (fun () ->
          ignore (Crashes.run_once cfg ~seed:0 : (Crashes.outcome, string) result));
      Alcotest.(check bool) "tracing off afterwards" false (Trace.active ());
      let lines = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check bool) "trace not empty" true (List.length lines > 100);
      let scheds = ref 0 and pwbs = ref 0 and rounds = ref 0 and mem = ref 0 in
      List.iter
        (fun l ->
          Alcotest.(check bool) "one object per line" true
            (String.length l >= 2
            && l.[0] = '{'
            && l.[String.length l - 1] = '}');
          if starts_with ~prefix:{|{"ev":"sched"|} l then incr scheds;
          if starts_with ~prefix:{|{"ev":"pwb"|} l then incr pwbs;
          if starts_with ~prefix:{|{"ev":"round"|} l then incr rounds;
          if
            starts_with ~prefix:{|{"ev":"read"|} l
            || starts_with ~prefix:{|{"ev":"write"|} l
            || starts_with ~prefix:{|{"ev":"cas"|} l
          then incr mem)
        lines;
      Alcotest.(check bool) "sched events" true (!scheds > 0);
      Alcotest.(check bool) "pwb events" true (!pwbs > 0);
      Alcotest.(check bool) "round markers" true (!rounds > 0);
      Alcotest.(check bool) "memory events" true (!mem > 0))

let test_tracing_does_not_perturb () =
  (* Installing the tracer must not change the simulation: the virtual-
     time metrics of a traced run are identical to an untraced one. *)
  let wl = Workload.default Workload.update_intensive in
  let p0 = Runner.measure ~duration_ns:30_000. Set_intf.tracking ~threads:4 wl in
  let p1 =
    with_temp_file (fun path ->
        Trace.with_file path (fun () ->
            Runner.measure ~duration_ns:30_000. Set_intf.tracking ~threads:4 wl))
  in
  Alcotest.(check bool) "identical measurement" true (p0 = p1)

let test_good_variants_still_pass () =
  (* sanity: the negative control fails for its intended reason, not
     because the replay plumbing broke campaigns in general *)
  let cfg = { (broken_cfg ~threads:4 ~ops:10) with Crashes.factory = Set_intf.tracking } in
  for seed = 0 to 9 do
    match Crashes.run_once cfg ~seed with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
  done

let suite =
  [
    Alcotest.test_case "broken variant replays bit-for-bit" `Quick
      test_broken_variant_replays;
    Alcotest.test_case "run_once saves a loadable repro" `Quick
      test_run_once_saves_loadable_repro;
    Alcotest.test_case "repro save/load roundtrip" `Quick
      test_save_load_roundtrip;
    Alcotest.test_case "qcheck pp/load round-trip" `Quick
      test_qcheck_pp_load_roundtrip;
    Alcotest.test_case "malformed repro files rejected" `Quick
      test_malformed_corpus;
    Alcotest.test_case "corrupted schedule fails loudly" `Quick
      test_corrupted_schedule_diverges;
    Alcotest.test_case "shrinker minimizes the counterexample" `Quick
      test_shrink_minimizes;
    Alcotest.test_case "trace is well-formed JSONL" `Quick
      test_trace_is_wellformed_jsonl;
    Alcotest.test_case "tracing does not perturb the simulation" `Quick
      test_tracing_does_not_perturb;
    Alcotest.test_case "good variants still pass campaigns" `Quick
      test_good_variants_still_pass;
  ]
