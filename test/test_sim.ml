(* The discrete-event engine: determinism, clock accounting, crash
   injection, scheduling fairness. *)

let test_runs_all () =
  let hits = Array.make 5 false in
  (match Sim.run (Array.init 5 (fun i _ -> hits.(i) <- true)) with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
  Array.iteri
    (fun i h -> Alcotest.(check bool) (Printf.sprintf "thread %d ran" i) true h)
    hits

let test_tid_and_in_sim () =
  Alcotest.(check bool) "outside" false (Sim.in_sim ());
  let seen = Array.make 3 (-1) in
  ignore
    (Sim.run
       (Array.init 3 (fun i _ ->
            Alcotest.(check bool) "inside" true (Sim.in_sim ());
            seen.(i) <- Sim.tid ()))
      : Sim.outcome);
  Alcotest.(check (list int)) "tids" [ 0; 1; 2 ] (Array.to_list seen);
  Alcotest.(check bool) "outside again" false (Sim.in_sim ())

let test_clock_accounting () =
  let final = ref 0. in
  ignore
    (Sim.run
       [|
         (fun _ ->
           Sim.step 100.;
           Sim.advance 50.;
           Sim.step 0.;
           final := Sim.now ());
       |]
      : Sim.outcome);
  Alcotest.(check (float 0.001)) "clock" 150. !final

let test_perf_policy_interleaves_by_clock () =
  (* A thread with cheap steps must run many steps while an expensive
     thread completes few: min-clock scheduling is fair in virtual time. *)
  let order = ref [] in
  ignore
    (Sim.run ~policy:`Perf
       [|
         (fun _ ->
           for i = 1 to 3 do
             Sim.step 1000.;
             order := (0, i) :: !order
           done);
         (fun _ ->
           for i = 1 to 3 do
             Sim.step 10.;
             order := (1, i) :: !order
           done);
       |]
      : Sim.outcome);
  (* the cheap thread's three steps all precede the expensive thread's
     second step *)
  let pos x =
    let rec idx n = function
      | [] -> Alcotest.fail "missing event"
      | e :: rest -> if e = x then n else idx (n + 1) rest
    in
    idx 0 (List.rev !order)
  in
  Alcotest.(check bool) "cheap thread runs ahead" true (pos (1, 3) < pos (0, 2))

let test_random_policy_deterministic_per_seed () =
  let trace seed =
    let log = ref [] in
    ignore
      (Sim.run ~policy:`Random ~seed
         (Array.init 3 (fun i _ ->
              for j = 0 to 4 do
                Sim.step 1.;
                log := (i, j) :: !log
              done))
        : Sim.outcome);
    !log
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 42 = trace 42);
  Alcotest.(check bool)
    "different seeds usually differ" true
    (List.exists (fun s -> trace s <> trace 42) [ 1; 2; 3; 4; 5 ])

let test_crash_at_step () =
  let completed = ref 0 in
  let outcome =
    Sim.run ~policy:`Random ~crash_at:10
      (Array.init 4 (fun _ _ ->
           for _ = 1 to 100 do
             Sim.step 1.
           done;
           incr completed))
  in
  (match outcome with
  | Sim.Crashed_at n -> Alcotest.(check bool) "at step 10" true (n >= 10)
  | Sim.All_done -> Alcotest.fail "expected crash");
  Alcotest.(check int) "no thread completed" 0 !completed

let test_crash_unwinds_with_exception () =
  let cleaned = ref false in
  (match
     Sim.run ~crash_at:5
       [|
         (fun _ ->
           Fun.protect
             ~finally:(fun () -> cleaned := true)
             (fun () ->
               for _ = 1 to 100 do
                 Sim.step 1.
               done));
       |]
   with
  | Sim.Crashed_at _ -> ()
  | Sim.All_done -> Alcotest.fail "expected crash");
  Alcotest.(check bool) "finalizer ran on Crashed" true !cleaned

let test_request_crash () =
  match
    Sim.run
      [| (fun _ -> Sim.step 1.); (fun _ -> Sim.request_crash ()) |]
  with
  | Sim.Crashed_at _ -> ()
  | Sim.All_done -> Alcotest.fail "expected crash"

let test_no_nested_runs () =
  match
    Sim.run [| (fun _ -> ignore (Sim.run [| (fun _ -> ()) |] : Sim.outcome)) |]
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "nested run must be rejected"

let test_exception_escapes_cleanly () =
  (match Sim.run [| (fun _ -> failwith "boom") |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception should propagate");
  (* the engine must not leak its context *)
  Alcotest.(check bool) "not in sim" false (Sim.in_sim ());
  Sim.step 5. (* must be a no-op, not an unhandled effect *)

let test_step_limit () =
  (* a livelocked fiber must abort the run instead of hanging it *)
  (match
     Sim.run ~step_limit:1000
       [| (fun _ -> while true do Sim.step 1. done) |]
   with
  | exception Sim.Step_limit -> ()
  | _ -> Alcotest.fail "expected Step_limit");
  Alcotest.(check bool) "engine clean" false (Sim.in_sim ());
  (* generous limits do not fire *)
  match Sim.run ~step_limit:1000 [| (fun _ -> Sim.step 1.) |] with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash"

let test_step_limit_runs_finalizers () =
  (* Fibers abandoned when the watchdog fires must be discontinued so
     their finalizers run — they used to be dropped as live continuations,
     leaking whatever the fiber held open. *)
  let cleaned = Array.make 3 false in
  (match
     Sim.run ~step_limit:500
       (Array.init 3 (fun i _ ->
            Fun.protect
              ~finally:(fun () -> cleaned.(i) <- true)
              (fun () ->
                while true do
                  Sim.step 1.
                done)))
   with
  | exception Sim.Step_limit -> ()
  | _ -> Alcotest.fail "expected Step_limit");
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "finalizer %d ran" i) true c)
    cleaned;
  Alcotest.(check bool) "engine clean" false (Sim.in_sim ());
  (* the engine is reusable afterwards *)
  match Sim.run [| (fun _ -> Sim.step 1.) |] with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash"

let test_schedule_record_replay () =
  let run ~seed ~schedule ~record =
    let log = ref [] in
    ignore
      (Sim.run ~policy:`Random ~seed ~schedule ~record
         (Array.init 4 (fun i _ ->
              for j = 0 to 9 do
                Sim.step 1.;
                log := (i, j) :: !log
              done))
        : Sim.outcome);
    List.rev !log
  in
  let picks = ref [] in
  let original =
    run ~seed:5 ~schedule:[||] ~record:(fun tid -> picks := tid :: !picks)
  in
  let schedule = Array.of_list (List.rev !picks) in
  Alcotest.(check bool) "picks recorded" true (Array.length schedule > 0);
  (* replaying the recorded schedule reproduces the interleaving exactly,
     even under a different rng seed: every decision comes from the tape *)
  let replayed = run ~seed:9999 ~schedule ~record:(fun _ -> ()) in
  Alcotest.(check bool) "identical interleaving" true (replayed = original)

let test_boundary_exactness () =
  (* Both bounds follow one convention (see sim.mli): a bound of n fires
     at the n-th scheduling step — steps 1..n-1 complete, the n-th [step]
     call does not return.  Lock the exact boundary on both sides. *)
  let body completed = [| (fun _ -> for _ = 1 to 5 do Sim.step 1. done; incr completed) |] in
  let c = ref 0 in
  (match Sim.run ~policy:`Random ~crash_at:5 (body c) with
  | Sim.Crashed_at n -> Alcotest.(check int) "crash at exactly 5" 5 n
  | Sim.All_done -> Alcotest.fail "crash_at 5 must fire on the 5th step");
  Alcotest.(check int) "5th step call did not return" 0 !c;
  let c = ref 0 in
  (match Sim.run ~policy:`Random ~crash_at:6 (body c) with
  | Sim.All_done -> ()
  | Sim.Crashed_at n -> Alcotest.failf "crash_at 6 fired at %d of 5 steps" n);
  Alcotest.(check int) "all 5 steps completed" 1 !c;
  let c = ref 0 in
  (match Sim.run ~policy:`Random ~step_limit:5 (body c) with
  | exception Sim.Step_limit -> ()
  | _ -> Alcotest.fail "step_limit 5 must fire on the 5th step");
  Alcotest.(check int) "5th step call aborted" 0 !c;
  let c = ref 0 in
  (match Sim.run ~policy:`Random ~step_limit:6 (body c) with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
  Alcotest.(check int) "limit 6 lets 5 steps finish" 1 !c

let test_replay_divergence_reported () =
  let bodies =
    Array.init 2 (fun _ _ ->
        for _ = 1 to 10 do
          Sim.step 1.
        done)
  in
  let picks = ref [] in
  ignore
    (Sim.run ~policy:`Random ~seed:3
       ~record:(fun tid -> picks := tid :: !picks)
       bodies
      : Sim.outcome);
  let schedule = Array.of_list (List.rev !picks) in
  (* a clean replay reports no divergence *)
  let count = ref 0 in
  ignore
    (Sim.run ~policy:`Random ~seed:3 ~schedule
       ~divergence:(fun ~step:_ ~want:_ -> incr count)
       bodies
      : Sim.outcome);
  Alcotest.(check int) "faithful replay has no divergence" 0 !count;
  (* corrupt one entry to a tid that is never ready: the divergence
     callback must fire with that entry, not be silently skipped *)
  let bad = Array.copy schedule in
  bad.(Array.length bad / 2) <- 61;
  let wants = ref [] in
  ignore
    (Sim.run ~policy:`Random ~seed:3 ~schedule:bad
       ~divergence:(fun ~step:_ ~want -> wants := want :: !wants)
       bodies
      : Sim.outcome);
  Alcotest.(check bool) "divergence reported" true (List.mem 61 !wants)

let test_choose_drives_scheduling () =
  (* an external chooser that always picks the highest ready tid must run
     thread 1 to completion before thread 0 executes at all *)
  let log = ref [] in
  let seen_single = ref false in
  ignore
    (Sim.run ~policy:`Random
       ~choose:(fun ~crashing:_ ready ->
         if Array.length ready = 1 then seen_single := true;
         ready.(Array.length ready - 1))
       (Array.init 2 (fun i _ ->
            for j = 0 to 4 do
              Sim.step 1.;
              log := (i, j) :: !log
            done))
      : Sim.outcome);
  let order = List.rev !log in
  Alcotest.(check (list (pair int int)))
    "thread 1 runs first"
    [ (1, 0); (1, 1); (1, 2); (1, 3); (1, 4);
      (0, 0); (0, 1); (0, 2); (0, 3); (0, 4) ]
    order;
  Alcotest.(check bool) "single-ready decisions also consulted" true
    !seen_single;
  (* a chooser returning a non-ready tid is a hard error, not a fallback *)
  match
    Sim.run ~policy:`Random
      ~choose:(fun ~crashing:_ _ -> 61)
      [| (fun _ -> Sim.step 1.) |]
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "non-ready choose pick must fail"

let test_many_threads () =
  let n = 60 in
  let done_ = Array.make n false in
  ignore
    (Sim.run ~policy:`Perf
       (Array.init n (fun i _ ->
            for _ = 1 to 50 do
              Sim.step 3.
            done;
            done_.(i) <- true))
      : Sim.outcome);
  Alcotest.(check bool) "all completed" true (Array.for_all Fun.id done_)

(* -- per-fiber interrupts ------------------------------------------------- *)

exception Boom

let test_interrupt_delivered_and_catchable () =
  let caught = ref (-1) in
  let finished = ref false in
  ignore
    (Sim.run ~policy:`Perf
       [|
         (fun _ ->
           let progress = ref 0 in
           (try
              for i = 1 to 100 do
                Sim.step 10.;
                progress := i
              done
            with Boom -> caught := !progress);
           (* the fiber survives the interrupt: in-fiber recovery *)
           Sim.step 5.;
           finished := true);
         (fun _ ->
           Sim.step 35.;
           Sim.interrupt ~tid:0 Boom;
           Sim.step 1.);
       |]
      : Sim.outcome);
  (* under `Perf the victim completes steps at 10/20/30, the attacker
     interrupts at clock 35, and the victim's next resumption (clock 40)
     receives the exception: progress is exactly 3 *)
  Alcotest.(check int) "delivered at the next resumption" 3 !caught;
  Alcotest.(check bool) "victim continued after catching" true !finished

let test_static_interrupt_at_exact_dispatch () =
  (* dispatch 1 is the fiber's initial thunk; dispatch n >= 2 resumes
     its (n-1)-th suspension.  Steps cost >= the expensive threshold so
     every one is a scheduling point (perf mode batches cheap steps).
     An interrupt at dispatch 3 replaces the return of the fiber's 2nd
     [step] call — the same boundary convention as [crash_at] — so
     exactly one loop iteration has finished. *)
  let caught_at = ref (-1) in
  ignore
    (Sim.run
       ~interrupts:[| (0, 3, Boom) |]
       [|
         (fun _ ->
           let progress = ref 0 in
           try
             for i = 1 to 10 do
               Sim.step 10.;
               progress := i
             done
           with Boom -> caught_at := !progress);
       |]
      : Sim.outcome);
  Alcotest.(check int) "one iteration completed before delivery" 1 !caught_at;
  (* at = 1 predates the first resumption: delivered there, 0 steps done *)
  let caught_at = ref (-1) in
  ignore
    (Sim.run
       ~interrupts:[| (0, 1, Boom) |]
       [|
         (fun _ ->
           let progress = ref 0 in
           try
             for i = 1 to 10 do
               Sim.step 10.;
               progress := i
             done
           with Boom -> caught_at := !progress);
       |]
      : Sim.outcome);
  Alcotest.(check int) "armed before any resumption" 0 !caught_at

let test_interrupt_on_finished_fiber_is_noop () =
  (* static: the victim finishes at dispatch 2, the interrupt armed for
     dispatch 5 never fires and must not wedge or escape the run *)
  (match
     Sim.run
       ~interrupts:[| (1, 5, Boom) |]
       [|
         (fun _ -> for _ = 1 to 20 do Sim.step 10. done);
         (fun _ -> Sim.step 10.);
       |]
   with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
  (* dynamic: aiming at a fiber that already completed is a no-op *)
  match
    Sim.run ~policy:`Perf
      [|
        (fun _ -> Sim.step 1.);
        (fun _ ->
          Sim.step 100.;
          Sim.interrupt ~tid:0 Boom;
          Sim.step 1.);
      |]
  with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash"

let test_self_interrupt_raises_immediately () =
  let caught = ref false in
  ignore
    (Sim.run
       [|
         (fun _ ->
           try Sim.interrupt ~tid:0 Boom with Boom -> caught := true);
       |]
      : Sim.outcome);
  Alcotest.(check bool) "self-interrupt raised in place" true !caught

let suite =
  [
    Alcotest.test_case "runs all threads" `Quick test_runs_all;
    Alcotest.test_case "tid and in_sim" `Quick test_tid_and_in_sim;
    Alcotest.test_case "clock accounting" `Quick test_clock_accounting;
    Alcotest.test_case "perf policy follows virtual clocks" `Quick
      test_perf_policy_interleaves_by_clock;
    Alcotest.test_case "random policy deterministic per seed" `Quick
      test_random_policy_deterministic_per_seed;
    Alcotest.test_case "crash at a chosen step" `Quick test_crash_at_step;
    Alcotest.test_case "crash unwinds fibers" `Quick
      test_crash_unwinds_with_exception;
    Alcotest.test_case "request_crash" `Quick test_request_crash;
    Alcotest.test_case "nested runs rejected" `Quick test_no_nested_runs;
    Alcotest.test_case "escaping exception leaves engine clean" `Quick
      test_exception_escapes_cleanly;
    Alcotest.test_case "step-limit watchdog" `Quick test_step_limit;
    Alcotest.test_case "step-limit teardown runs finalizers" `Quick
      test_step_limit_runs_finalizers;
    Alcotest.test_case "schedule record/replay" `Quick
      test_schedule_record_replay;
    Alcotest.test_case "crash/step-limit boundary exactness" `Quick
      test_boundary_exactness;
    Alcotest.test_case "replay divergence reported" `Quick
      test_replay_divergence_reported;
    Alcotest.test_case "choose drives scheduling" `Quick
      test_choose_drives_scheduling;
    Alcotest.test_case "sixty threads" `Quick test_many_threads;
    Alcotest.test_case "interrupt delivered and catchable" `Quick
      test_interrupt_delivered_and_catchable;
    Alcotest.test_case "static interrupt at exact dispatch" `Quick
      test_static_interrupt_at_exact_dispatch;
    Alcotest.test_case "interrupt on finished fiber is no-op" `Quick
      test_interrupt_on_finished_fiber_is_noop;
    Alcotest.test_case "self-interrupt raises immediately" `Quick
      test_self_interrupt_raises_immediately;
  ]
