(* Persistent-space accounting: the live-payload enumeration must agree
   with the abstract set's contents for every implementation, the sweep's
   classification must conserve lines (live + garbage = allocated), and
   [repro space] campaigns must be byte-identical across replays and
   across -j fan-out. *)

let fresh_algo (f : Set_intf.factory) threads =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:f.Set_intf.fname () in
  (heap, f.Set_intf.make heap ~threads)

let payload_keys space =
  List.concat_map
    (fun (_, cls) -> match cls with `Payload ks -> ks | `Meta _ -> [])
    space

let meta_lines space =
  List.filter (fun (_, cls) -> match cls with `Meta _ -> true | _ -> false) space

(* ---- live payload == contents, for every variant ---------------------- *)

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 0 60)
      (pair (int_range 0 2) (int_range 0 20)))

let prop_payload_matches_contents =
  QCheck2.Test.make
    ~name:"space payload keys = contents for every variant" ~count:30 gen_ops
    (fun ops ->
      List.iter
        (fun (f : Set_intf.factory) ->
          let _, algo = fresh_algo f 4 in
          List.iter
            (fun (kind, k) ->
              ignore
                (match kind with
                | 0 -> algo.Set_intf.insert k
                | 1 -> algo.Set_intf.delete k
                | _ -> algo.Set_intf.find k))
            ops;
          let got = List.sort compare (payload_keys (algo.Set_intf.space ()))
          and want = List.sort compare (algo.Set_intf.contents ()) in
          if got <> want then
            QCheck2.Test.fail_reportf "%s: payload [%s] <> contents [%s]"
              f.Set_intf.fname
              (String.concat ";" (List.map string_of_int got))
              (String.concat ";" (List.map string_of_int want)))
        Set_intf.all;
      true)

(* ---- enumeration stays inside the heap's allocation ------------------- *)

let test_enumeration_within_heap () =
  List.iter
    (fun (f : Set_intf.factory) ->
      let heap, algo = fresh_algo f 4 in
      for k = 0 to 15 do
        ignore (algo.Set_intf.insert k)
      done;
      for k = 0 to 7 do
        ignore (algo.Set_intf.delete k)
      done;
      let space = algo.Set_intf.space () in
      (* the live enumeration can never exceed what the heap allocated *)
      let distinct = Hashtbl.create 64 in
      List.iter
        (fun (line, _) -> Hashtbl.replace distinct (Pmem.line_id line) ())
        space;
      let live = Hashtbl.length distinct in
      let total = Pmem.lines_allocated heap in
      if live > total then
        Alcotest.failf "%s: %d live lines > %d allocated" f.Set_intf.fname
          live total)
    Set_intf.all

(* ---- detectable variants carry per-thread metadata -------------------- *)

let test_lower_bound_metadata () =
  List.iter
    (fun (f : Set_intf.factory) ->
      let _, algo = fresh_algo f 4 in
      ignore (algo.Set_intf.insert 1);
      if algo.Set_intf.supports_crash then begin
        let m = List.length (meta_lines (algo.Set_intf.space ())) in
        if m < 4 then
          Alcotest.failf "%s: %d metadata lines < 4 threads (arXiv 2002.11378)"
            f.Set_intf.fname m
      end)
    Set_intf.all

(* ---- sweep conservation and campaign determinism ---------------------- *)

let small_cfg =
  Space.
    {
      threads = 3;
      ops_per_thread = 25;
      find_pct = 20;
      key_range = 32;
      prefill = 8;
      max_crashes = 2;
      seed = 7;
    }

let variants = Set_intf.[ tracking; memento_list ]

let test_sweep_conservation () =
  List.iter
    (fun (name, r) ->
      match r with
      | Error m -> Alcotest.failf "%s: run failed: %s" name m
      | Ok (s : Space.sweep) ->
          if
            s.Space.sv_payload_lines + s.Space.sv_meta_lines
            + s.Space.sv_garbage_lines
            <> s.Space.sv_total_lines
          then
            Alcotest.failf "%s: %d payload + %d meta + %d garbage <> %d total"
              name s.Space.sv_payload_lines s.Space.sv_meta_lines
              s.Space.sv_garbage_lines s.Space.sv_total_lines;
          if not s.Space.sv_lb_ok then
            Alcotest.failf "%s: lower-bound check failed" name;
          if s.Space.sv_ops <= 0 then
            Alcotest.failf "%s: no completed ops recorded" name)
    (Space.campaign small_cfg variants)

let test_campaign_byte_identity () =
  let render rs =
    ( Space.render_text small_cfg rs,
      Space.render_json small_cfg rs,
      Space.render_csv rs )
  in
  let t1, j1, c1 = render (Space.campaign ~jobs:1 small_cfg variants) in
  let t1', j1', c1' = render (Space.campaign ~jobs:1 small_cfg variants) in
  let t4, j4, c4 = render (Space.campaign ~jobs:4 small_cfg variants) in
  Alcotest.(check string) "text replay-stable" t1 t1';
  Alcotest.(check string) "json replay-stable" j1 j1';
  Alcotest.(check string) "csv replay-stable" c1 c1';
  Alcotest.(check string) "text -j1 = -j4" t1 t4;
  Alcotest.(check string) "json -j1 = -j4" j1 j4;
  Alcotest.(check string) "csv -j1 = -j4" c1 c4

(* ---- the registry is inert when disabled ------------------------------ *)

let test_disabled_records_nothing () =
  Space.disable ();
  Space.reset ();
  let _, algo = fresh_algo Set_intf.tracking 2 in
  for k = 0 to 9 do
    ignore (algo.Set_intf.insert k)
  done;
  Alcotest.(check int) "no records" 0 (List.length (Space.recs ()))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_payload_matches_contents;
    Alcotest.test_case "enumeration within heap allocation" `Quick
      test_enumeration_within_heap;
    Alcotest.test_case "detectable variants meet metadata lower bound" `Quick
      test_lower_bound_metadata;
    Alcotest.test_case "sweep conserves line classification" `Quick
      test_sweep_conservation;
    Alcotest.test_case "campaign byte-identical across replays and -j" `Quick
      test_campaign_byte_identity;
    Alcotest.test_case "disabled registry records nothing" `Quick
      test_disabled_records_nothing;
  ]
