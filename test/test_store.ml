(* The sharded recoverable KV service: routing, per-shard crash/recovery
   under live traffic, exactly-once request outcomes, SLO reporting,
   serve repro files and the bounded crash-point exploration. *)

let factory name = Result.get_ok (Set_intf.by_name name)

let small_workload ~keys =
  {
    (Workload.default Workload.update_intensive) with
    key_range = keys;
    prefill_n = keys / 2;
  }

let cfg ?(algo = "tracking") ?(shards = 2) ?(clients = 2) ?(ops = 30)
    ?(keys = 32) () =
  {
    (Store.default_config (factory algo)) with
    shards;
    clients;
    ops_per_client = ops;
    workload = small_workload ~keys;
  }

let run_ok c =
  match Store.run c with Ok r -> r | Error e -> Alcotest.fail e

(* -- routing -------------------------------------------------------------- *)

let test_router_spreads_keys () =
  let shards = 4 in
  let counts = Array.make shards 0 in
  for k = 1 to 1000 do
    let s = Router.route ~shards k in
    Alcotest.(check bool) "in range" true (s >= 0 && s < shards);
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d got a fair share (%d)" i c)
        true (c > 150))
    counts;
  (* deterministic: same key, same shard *)
  Alcotest.(check int) "stable" (Router.route ~shards 42)
    (Router.route ~shards 42)

(* -- serving -------------------------------------------------------------- *)

let test_serve_no_crash () =
  let c = cfg () in
  let r = run_ok c in
  let total = c.Store.clients * c.Store.ops_per_client in
  Alcotest.(check int) "all completed" total r.Slo.completed;
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  Alcotest.(check int) "no retries" 0 r.Slo.retried;
  Alcotest.(check bool) "no degraded window" true (r.Slo.degraded = None);
  Alcotest.(check bool) "positive throughput" true (r.Slo.throughput_mops > 0.);
  Alcotest.(check bool) "latency quantiles present and ordered" true
    (match (r.Slo.lat_p50_ns, r.Slo.lat_p90_ns, r.Slo.lat_p99_ns) with
    | Some p50, Some p90, Some p99 -> p50 <= p90 && p90 <= p99
    | _ -> false);
  match Slo.check ~crash_expected:false r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_serve_crash_zero_lost_survivors_progress () =
  let c =
    {
      (cfg ~shards:4 ~clients:4 ~ops:100 ~keys:128 ()) with
      Store.crash = Some (Store.After_requests { victim = 2; requests = 130 });
    }
  in
  let r = run_ok c in
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  Alcotest.(check int) "all completed" 400 r.Slo.completed;
  let victim = List.nth r.Slo.shards 2 in
  Alcotest.(check bool) "victim crashed" true (victim.Slo.ss_crashes >= 1);
  Alcotest.(check bool) "recovery duration recorded" true
    (victim.Slo.ss_recovery_ns <> []);
  (match r.Slo.degraded with
  | None -> Alcotest.fail "no degraded window reported"
  | Some d ->
      Alcotest.(check int) "window around the victim" 2 d.Slo.dg_victim;
      Alcotest.(check bool) "window has duration" true (d.Slo.dg_window_ns > 0.);
      Alcotest.(check bool) "survivors completed requests during recovery"
        true
        (d.Slo.dg_survivor_completions > 0));
  match Slo.check ~crash_expected:true r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* An At_dispatch crash that lands mid-operation: the interrupted request
   must resolve through detectable recovery (recover op), exactly once. *)
let test_inflight_request_recovered () =
  let base = cfg ~ops:12 ~keys:16 () in
  let rec find k =
    if k > 150 then
      Alcotest.fail "no dispatch point interrupted an in-flight request"
    else
      let c =
        {
          base with
          Store.crash = Some (Store.At_dispatch { victim = 0; dispatch = k });
        }
      in
      match Store.run c with
      | Error e -> Alcotest.fail e
      | Ok r when r.Slo.recovered >= 1 -> r
      | Ok _ -> find (k + 1)
  in
  let r = find 1 in
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  let victim = List.nth r.Slo.shards 0 in
  Alcotest.(check bool) "victim recovered its in-flight request" true
    (victim.Slo.ss_recovered >= 1)

let test_batching_under_open_loop () =
  let base = cfg ~shards:2 ~clients:4 ~ops:50 ~keys:64 () in
  let open_cfg batch =
    { base with Store.batch; open_loop_ns = Some 100. }
  in
  let r1 = run_ok (open_cfg 1) in
  let r8 = run_ok (open_cfg 8) in
  Alcotest.(check int) "batch=1 completes all" 200 r1.Slo.completed;
  Alcotest.(check int) "batch=8 completes all" 200 r8.Slo.completed;
  (* fast open-loop arrivals back the mailboxes up *)
  let max_q r =
    List.fold_left (fun m s -> max m s.Slo.ss_max_queue) 0 r.Slo.shards
  in
  Alcotest.(check bool) "queues actually built up" true (max_q r1 > 1);
  (* batching drains backlog in gulps: the makespan must not be worse *)
  Alcotest.(check bool) "batching is not slower" true
    (r8.Slo.makespan_ns <= r1.Slo.makespan_ns)

let test_run_deterministic_and_replayable () =
  let c =
    {
      (cfg ()) with
      Store.crash = Some (Store.After_requests { victim = 1; requests = 20 });
    }
  in
  let sched = ref [] in
  let r1 = ref None in
  (match Store.run ~record:(fun s -> sched := s :: !sched) c with
  | Ok r -> r1 := Some r
  | Error e -> Alcotest.fail e);
  let schedule = Array.of_list (List.rev !sched) in
  Alcotest.(check bool) "schedule recorded" true (Array.length schedule > 0);
  match Store.run ~schedule c with
  | Error e -> Alcotest.fail e
  | Ok r2 ->
      Alcotest.(check int) "replay has no divergence" 0 r2.Slo.divergences;
      let r1 = Option.get !r1 in
      Alcotest.(check string) "identical report" (Slo.to_json r1)
        (Slo.to_json { r2 with Slo.divergences = r1.Slo.divergences })

let test_validate_rejects_bad_configs () =
  let expect_err c =
    match Store.run c with
    | Error msg ->
        Alcotest.(check bool) "store error class" true
          (String.length msg >= 6 && String.sub msg 0 6 = "store:")
    | Ok _ -> Alcotest.fail "invalid config accepted"
  in
  expect_err { (cfg ()) with Store.shards = 0 };
  expect_err { (cfg ()) with Store.clients = 0 };
  expect_err { (cfg ()) with Store.batch = 0 };
  expect_err
    {
      (cfg ()) with
      Store.crash = Some (Store.After_requests { victim = 7; requests = 5 });
    };
  expect_err { (cfg ()) with Store.clients = 40; shards = 30 }

(* -- metrics wiring ------------------------------------------------------- *)

let test_metrics_wiring () =
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () -> Metrics.disable ())
    (fun () ->
      let c =
        {
          (cfg ()) with
          Store.crash =
            Some (Store.After_requests { victim = 0; requests = 15 });
        }
      in
      let r = run_ok c in
      let total = c.Store.clients * c.Store.ops_per_client in
      Alcotest.(check int) "no lost" 0 r.Slo.lost;
      (match Metrics.hist_summary "store.request.latency" with
      | None -> Alcotest.fail "latency histogram not registered"
      | Some s ->
          Alcotest.(check int) "one latency sample per request" total
            s.Metrics.count);
      let gauges = Metrics.gauges () in
      List.iter
        (fun sid ->
          let name = Printf.sprintf "store.shard%d.queue_depth" sid in
          Alcotest.(check bool) (name ^ " registered") true
            (List.mem_assoc name gauges))
        [ 0; 1 ])

(* -- serve repro files ---------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "tracking-nvm-serve" ".tmp" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* The negative control: tracking-broken elides the new-node pwb, so a
   shard crash inside the link-to-cleanup window leaves reachable
   poisoned data.  The failure must save as a serve repro and replay to
   the identical error. *)
let broken_failure () =
  let base = cfg ~algo:"tracking-broken" ~ops:12 ~keys:16 () in
  let rec find k =
    if k > 250 then Alcotest.fail "broken variant never failed"
    else
      let c =
        {
          base with
          Store.crash = Some (Store.At_dispatch { victim = 0; dispatch = k });
          wb = `All;
        }
      in
      let sched = ref [] in
      match Store.run ~record:(fun s -> sched := s :: !sched) c with
      | Error error -> (c, error, Array.of_list (List.rev !sched))
      | Ok _ -> find (k + 1)
  in
  find 1

let test_store_repro_roundtrip () =
  let c, error, schedule = broken_failure () in
  let r = Store_repro.of_config c ~error ~schedule in
  with_temp_file (fun path ->
      Store_repro.save path r;
      match Store_repro.load path with
      | Error e -> Alcotest.fail ("load: " ^ e)
      | Ok r' ->
          Alcotest.(check string) "algo" "tracking-broken" r'.Store_repro.algo;
          Alcotest.(check string) "error survives" error r'.Store_repro.error;
          Alcotest.(check int) "schedule length" (Array.length schedule)
            (Array.length r'.Store_repro.schedule);
          Alcotest.(check bool) "crash plan survives" true
            (r'.Store_repro.crash = c.Store.crash);
          Alcotest.(check bool) "wb survives" true
            (r'.Store_repro.wb = `All);
          (match Store_repro.replay r' with
          | Error e -> Alcotest.(check string) "replays to same failure" error e
          | Ok () -> Alcotest.fail "saved serve repro did not reproduce"))

let test_store_repro_rejects_garbage () =
  with_temp_file (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "not a serve repro\n");
      match Store_repro.load path with
      | Ok _ -> Alcotest.fail "accepted a garbage file"
      | Error _ -> ());
  let c, error, schedule = (cfg (), "synthetic", [||]) in
  let r =
    { (Store_repro.of_config c ~error ~schedule) with Store_repro.algo = "nope" }
  in
  match Store_repro.config_of r with
  | Ok _ -> Alcotest.fail "unknown algo accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the algo" true
        (String.length msg > 0)

(* -- bounded crash-point exploration --------------------------------------- *)

let test_explore_clean_on_tracking () =
  let c = cfg ~ops:12 ~keys:16 () in
  match Store.explore ~dispatch_budget:40 c with
  | Error e -> Alcotest.fail e
  | Ok st ->
      Alcotest.(check int) "no failures" 0 st.Store.ex_failures;
      Alcotest.(check bool) "crash points actually fired" true
        (st.Store.ex_fired > 0);
      Array.iter
        (fun (label, d) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s explored" label)
            true (d > 0))
        st.Store.ex_max_dispatch

let test_explore_catches_broken_variant () =
  let c = cfg ~algo:"tracking-broken" ~ops:12 ~keys:16 () in
  match Store.explore ~dispatch_budget:200 c with
  | Error e -> Alcotest.fail e
  | Ok st -> (
      Alcotest.(check bool) "failures found" true (st.Store.ex_failures > 0);
      (match st.Store.ex_first_failure with
      | None -> Alcotest.fail "failures counted but none reported"
      | Some msg ->
          Alcotest.(check bool) "counterexample names its crash point" true
            (String.length msg > 0));
      (* the captured counterexample converts to a repro that replays
         to the same bare error *)
      match st.Store.ex_first_cex with
      | None -> Alcotest.fail "failure reported but no counterexample captured"
      | Some (cex, sched, bare) -> (
          let r = Store_repro.of_config cex ~error:bare ~schedule:sched in
          match Store_repro.replay r with
          | Error e ->
              Alcotest.(check string) "replay reproduces the bare error" bare e
          | Ok () -> Alcotest.fail "counterexample replayed clean"))

(* An empty run has no latency distribution — the quantiles must be
   absent, not a fabricated 0 ns — and --check must refuse it loudly
   instead of vacuously passing a run that did no work. *)
let test_empty_report_has_no_quantiles () =
  let r =
    Slo.build ~total:0 ~divergences:0 ~requests:[] ~shards:[||]
      ~crash_victim:None ()
  in
  Alcotest.(check bool) "quantiles absent" true
    (r.Slo.lat_mean_ns = None
    && r.Slo.lat_p50_ns = None
    && r.Slo.lat_p90_ns = None
    && r.Slo.lat_p99_ns = None);
  Alcotest.(check bool) "json renders null" true
    (let j = Slo.to_json r in
     let has_null_p50 =
       let needle = "\"p50\":null" in
       let rec scan i =
         i + String.length needle <= String.length j
         && (String.sub j i (String.length needle) = needle || scan (i + 1))
       in
       scan 0
     in
     has_null_p50);
  match Slo.check ~crash_expected:false r with
  | Ok () -> Alcotest.fail "check accepted a zero-completed run"
  | Error e ->
      Alcotest.(check bool) "error names the empty run" true
        (String.length e > 0 && String.sub e 0 9 = "empty run")

let suite =
  [
    Alcotest.test_case "router spreads keys" `Quick test_router_spreads_keys;
    Alcotest.test_case "empty report: no quantiles, check refuses" `Quick
      test_empty_report_has_no_quantiles;
    Alcotest.test_case "serve without crash" `Quick test_serve_no_crash;
    Alcotest.test_case "crash of one shard loses nothing" `Quick
      test_serve_crash_zero_lost_survivors_progress;
    Alcotest.test_case "in-flight request detectably recovered" `Quick
      test_inflight_request_recovered;
    Alcotest.test_case "batching under open-loop arrivals" `Quick
      test_batching_under_open_loop;
    Alcotest.test_case "deterministic and schedule-replayable" `Quick
      test_run_deterministic_and_replayable;
    Alcotest.test_case "config validation" `Quick
      test_validate_rejects_bad_configs;
    Alcotest.test_case "metrics wiring" `Quick test_metrics_wiring;
    Alcotest.test_case "serve repro round-trips and replays" `Quick
      test_store_repro_roundtrip;
    Alcotest.test_case "serve repro rejects garbage" `Quick
      test_store_repro_rejects_garbage;
    Alcotest.test_case "explore clean on tracking" `Quick
      test_explore_clean_on_tracking;
    Alcotest.test_case "explore catches the broken variant" `Quick
      test_explore_catches_broken_variant;
  ]
