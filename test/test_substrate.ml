(* Remaining substrate modules: Pstats site registry, Pvar, the cost
   table, and Desc mechanics. *)

let test_pstats_registry () =
  let s1 = Pstats.make Pwb "subst.a" in
  let s2 = Pstats.make Pwb "subst.a" in
  Alcotest.(check bool) "memoized by name" true (s1 == s2);
  Alcotest.(check string) "name" "subst.a" (Pstats.name s1);
  Alcotest.(check bool) "kind" true (Pstats.kind s1 = Pstats.Pwb);
  (match Pstats.make Psync "subst.a" with
  | _ -> Alcotest.fail "kind conflict must be rejected"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "registered" true
    (List.exists (fun s -> Pstats.name s = "subst.a") (Pstats.sites ()))

let test_pstats_masks () =
  let s = Pstats.make Pwb "subst.mask" in
  Pstats.set_all_enabled true;
  Alcotest.(check bool) "enabled by default" true (Pstats.enabled s);
  Pstats.set_enabled s false;
  Alcotest.(check bool) "disabled" false (Pstats.enabled s);
  Pstats.set_kind_enabled Pstats.Pwb true;
  Alcotest.(check bool) "kind re-enable" true (Pstats.enabled s);
  Pstats.set_all_enabled true

let test_pstats_classify_majority () =
  Pstats.reset ();
  let s = Pstats.make Pwb "subst.classify" in
  Pstats.record s Pstats.Low;
  Pstats.record s Pstats.High;
  Pstats.record s Pstats.High;
  Alcotest.(check bool) "majority high" true
    (Pstats.classify s = Some Pstats.High);
  let l, m, h = Pstats.site_counts s in
  Alcotest.(check (list int)) "counts" [ 1; 0; 2 ] [ l; m; h ];
  Pstats.reset ();
  Alcotest.(check bool) "silent after reset" true (Pstats.classify s = None)

let test_pvar_private_lines () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let v = Pvar.make ~name:"subst.pv" heap ~threads:4 0 in
  Alcotest.(check int) "threads" 4 (Pvar.threads v);
  (* each thread's cell is on its own line *)
  for i = 0 to 3 do
    for j = 0 to 3 do
      if i <> j then
        Alcotest.(check bool) "distinct lines" true
          (Pmem.line_of (Pvar.cell v i) != Pmem.line_of (Pvar.cell v j))
    done
  done;
  (* durably initialized: values survive a crash *)
  Pmem.write (Pvar.cell v 2) 7;
  Pmem.crash heap;
  Alcotest.(check int) "unflushed write lost" 0 (Pmem.read (Pvar.cell v 2));
  Alcotest.(check int) "initial survives" 0 (Pmem.read (Pvar.cell v 0))

let test_pvar_bounds () =
  let heap = Pmem.heap () in
  match Pvar.make heap ~threads:(Pmem.max_threads + 1) 0 with
  | _ -> Alcotest.fail "out-of-range thread count must be rejected"
  | exception Invalid_argument _ -> ()

let test_cost_with_table_restores () =
  let before = (Cost.current ()).Cost.pwb_steal in
  Cost.with_table
    (fun c -> c.Cost.pwb_steal <- 1.)
    (fun () ->
      Alcotest.(check (float 0.001)) "tweaked" 1. (Cost.current ()).Cost.pwb_steal);
  Alcotest.(check (float 0.001)) "restored" before (Cost.current ()).Cost.pwb_steal;
  (* restores even on exception *)
  (try
     Cost.with_table
       (fun c -> c.Cost.cache_hit <- 99.)
       (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true
    ((Cost.current ()).Cost.cache_hit <> 99.)

type dnode = { line : Pmem.line; info : dnode Desc.state Pmem.t }

let test_desc_boxes () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let line = Pmem.new_line heap in
  let nd = { line; info = Pmem.on_line line Desc.Clean } in
  let d = Desc.make heap ~label:"t" ~affect:[ (nd, Desc.Clean) ] ~response:true () in
  (* canonical boxes are stable across calls *)
  Alcotest.(check bool) "tagged stable" true (Desc.tagged d == Desc.tagged d);
  Alcotest.(check bool) "untagged stable" true
    (Desc.untagged d == Desc.untagged d);
  (match Desc.tagged d with
  | Desc.Tagged d' -> Alcotest.(check bool) "self" true (Desc.same d d')
  | _ -> Alcotest.fail "tagged box shape");
  Alcotest.(check bool) "fresh descriptors differ" false
    (Desc.same d
       (Desc.make heap ~label:"t" ~affect:[ (nd, Desc.Clean) ] ~response:true ()));
  Alcotest.(check (option bool)) "result starts unset" None (Desc.result d);
  Desc.set_result d true;
  Alcotest.(check (option bool)) "result set" (Some true) (Desc.result d);
  let p = Desc.payload d in
  Alcotest.(check string) "label kept" "t" p.Desc.label;
  Alcotest.(check bool) "response kept" true p.Desc.response

let test_desc_poisoned_after_crash () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let line = Pmem.new_line heap in
  let nd = { line; info = Pmem.on_line line Desc.Clean } in
  let d = Desc.make heap ~label:"t" ~affect:[ (nd, Desc.Clean) ] ~response:true () in
  Pmem.crash heap;
  (* never persisted: recovery code touching it must fault loudly *)
  match Desc.payload d with
  | _ -> Alcotest.fail "expected Poisoned"
  | exception Pmem.Poisoned _ -> ()

let test_heap_line_accounting () =
  let heap = Pmem.heap () in
  let before = Pmem.lines_allocated heap in
  let _ = Pmem.new_line heap in
  let _ = Pmem.alloc heap 0 in
  Alcotest.(check int) "two lines" (before + 2) (Pmem.lines_allocated heap)

let suite =
  [
    Alcotest.test_case "pstats registry" `Quick test_pstats_registry;
    Alcotest.test_case "pstats enable masks" `Quick test_pstats_masks;
    Alcotest.test_case "pstats majority classification" `Quick
      test_pstats_classify_majority;
    Alcotest.test_case "pvar private lines, durable init" `Quick
      test_pvar_private_lines;
    Alcotest.test_case "pvar bounds" `Quick test_pvar_bounds;
    Alcotest.test_case "cost table scoping" `Quick
      test_cost_with_table_restores;
    Alcotest.test_case "descriptor boxes" `Quick test_desc_boxes;
    Alcotest.test_case "unpersisted descriptor poisons" `Quick
      test_desc_poisoned_after_crash;
    Alcotest.test_case "heap line accounting" `Quick
      test_heap_line_accounting;
  ]
